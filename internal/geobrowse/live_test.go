package geobrowse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialhist/internal/core"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/live"
	"spatialhist/internal/telemetry"
)

func newLiveStore(t testing.TB, cfg live.Config) *live.Store {
	t.Helper()
	if cfg.Grid == nil {
		cfg.Grid = grid.NewUnit(20, 20)
	}
	if cfg.Algo == 0 {
		cfg.Algo = live.AlgoEuler
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	s, err := live.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) (*httptest.ResponseRecorder, MutationResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(raw)))
	var resp MutationResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding %s response %q: %v", path, rec.Body.Bytes(), err)
		}
	}
	return rec, resp
}

func getBrowse(t *testing.T, h http.Handler, query string) BrowseResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/browse?"+query, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("browse %s: %d %s", query, rec.Code, rec.Body.String())
	}
	var resp BrowseResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestLiveServerEndpoints(t *testing.T) {
	store := newLiveStore(t, live.Config{RebuildEvery: -1})
	srv := NewLiveServer("live", store, Options{Telemetry: telemetry.NewRegistry()})

	// Ingest two objects and one rect outside the space, flushing so the
	// response generation has them.
	rec, resp := postJSON(t, srv, "/api/ingest?flush=1", MutationRequest{
		Rects: [][4]float64{{1, 1, 3, 3}, {5, 5, 9, 9}, {500, 500, 600, 600}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body.String())
	}
	if resp.Applied != 2 || resp.Rejected != 1 || resp.Generation < 2 {
		t.Fatalf("ingest response %+v, want 2 applied, 1 rejected, gen >= 2", resp)
	}

	// The snapshot serves them.
	irec := httptest.NewRecorder()
	srv.ServeHTTP(irec, httptest.NewRequest("GET", "/api/info", nil))
	var info Info
	if err := json.Unmarshal(irec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Objects != 2 || info.Generation != resp.Generation {
		t.Fatalf("info %+v, want 2 objects at gen %d", info, resp.Generation)
	}

	// Delete one back out.
	rec, resp = postJSON(t, srv, "/api/delete?flush=1", MutationRequest{Rects: [][4]float64{{1, 1, 3, 3}}})
	if rec.Code != http.StatusOK || resp.Applied != 1 {
		t.Fatalf("delete: %d %+v", rec.Code, resp)
	}

	// Status reflects the journal-free live store.
	srec := httptest.NewRecorder()
	srv.ServeHTTP(srec, httptest.NewRequest("GET", "/api/store/status", nil))
	var st live.Status
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.LiveObjects != 1 || st.Mutations != 4 || st.Rejected != 1 {
		t.Fatalf("status %+v, want 1 live, 4 mutations, 1 rejected", st)
	}

	// Malformed bodies are 400s.
	for name, body := range map[string]string{
		"not json":   "nope",
		"empty":      `{"rects":[]}`,
		"wrong type": `{"rects":"x"}`,
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/ingest", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400", name, rec.Code)
		}
	}

	// Mutations against a closed store surface as 503s.
	store.Close()
	rec, _ = postJSON(t, srv, "/api/ingest", MutationRequest{Rects: [][4]float64{{1, 1, 2, 2}}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after close: %d, want 503", rec.Code)
	}
}

// TestGenerationCacheInvalidation is the satellite contract: a snapshot
// swap must make identical browse requests miss the cache (they see the
// new data), while entries of other generations stay resident rather than
// being flushed.
func TestGenerationCacheInvalidation(t *testing.T) {
	store := newLiveStore(t, live.Config{RebuildEvery: -1})
	srv := NewLiveServer("live", store, Options{Telemetry: telemetry.NewRegistry()})
	if _, resp := postJSON(t, srv, "/api/ingest?flush=1", MutationRequest{Rects: [][4]float64{{1, 1, 3, 3}}}); resp.Applied != 1 {
		t.Fatalf("seed ingest: %+v", resp)
	}

	const q = "x1=0&y1=0&x2=20&y2=20&cols=2&rows=2"
	before := getBrowse(t, srv, q)
	getBrowse(t, srv, q)
	if hits, misses := srv.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("pre-swap stats: %d hits, %d misses; want 1, 1", hits, misses)
	}

	// Swap generations.
	if _, resp := postJSON(t, srv, "/api/ingest?flush=1", MutationRequest{Rects: [][4]float64{{6, 6, 9, 9}}}); resp.Applied != 1 {
		t.Fatalf("swap ingest: %+v", resp)
	}

	after := getBrowse(t, srv, q)
	hits, misses := srv.CacheStats()
	if hits != 1 || misses != 2 {
		t.Fatalf("post-swap stats: %d hits, %d misses; want the identical request to recompute", hits, misses)
	}
	var sumBefore, sumAfter int64
	for i := range before.Tiles {
		sumBefore += before.Tiles[i].Contains + before.Tiles[i].Overlap + before.Tiles[i].Disjoint
		sumAfter += after.Tiles[i].Contains + after.Tiles[i].Overlap + after.Tiles[i].Disjoint
	}
	if sumAfter <= sumBefore {
		t.Fatalf("post-swap browse does not see the new object (%d -> %d)", sumBefore, sumAfter)
	}
	// Both generations' entries are resident: the swap invalidated by
	// keying, not by flushing the cache.
	if n := srv.cache.Len(); n != 2 {
		t.Fatalf("cache holds %d entries, want both generations' responses", n)
	}
	// And the post-swap key now hits.
	getBrowse(t, srv, q)
	if hits, _ := srv.CacheStats(); hits != 2 {
		t.Fatalf("post-swap repeat did not hit (hits %d)", hits)
	}
}

// gateEstimator blocks inside the first Estimate call of a browse
// computation until released, so a test can hold one request mid-compute
// while identical requests pile up behind the single-flight.
type gateEstimator struct {
	core.Estimator
	entered chan struct{} // one send per blocked computation
	release chan struct{}
	gated   atomic.Bool
}

func (g *gateEstimator) Estimate(q grid.Span) core.Estimate {
	if g.gated.CompareAndSwap(false, true) {
		g.entered <- struct{}{}
		<-g.release
	}
	return g.Estimator.Estimate(q)
}

// swappableSource is an EstimatorSource a test can repoint.
type swappableSource struct {
	mu  sync.Mutex
	est core.Estimator
	gen uint64
}

func (s *swappableSource) CurrentEstimator() (core.Estimator, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est, s.gen
}

// TestPreSwapSingleFlight pins down the other half of the satellite
// contract: identical requests against the SAME generation still share one
// computation through the single-flight, even while a swap is imminent.
func TestPreSwapSingleFlight(t *testing.T) {
	base, err := core.NewMEuler(grid.NewUnit(20, 20), []float64{1, 9},
		[]geom.Rect{geom.NewRect(1, 1, 3, 3), geom.NewRect(4, 4, 11, 11)})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateEstimator{Estimator: base,
		entered: make(chan struct{}, 1), release: make(chan struct{})}
	src := &swappableSource{est: gate, gen: 7}
	reg := telemetry.NewRegistry()
	srv := NewSourceServer("gated", src, Options{Telemetry: reg})

	const q = "x1=0&y1=0&x2=20&y2=20&cols=2&rows=2"
	results := make(chan BrowseResponse, 2)
	go func() { results <- getBrowse(t, srv, q) }()
	<-gate.entered // the first request is mid-computation

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); results <- getBrowse(t, srv, q) }()
	// Give the follower time to queue behind the in-flight computation —
	// the gate admits one computation, so even if it arrives later it can
	// only hit the stored entry, never recompute.
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	a, b := <-results, <-results
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("deduplicated responses diverge: %v vs %v", a, b)
	}
	if _, misses := srv.CacheStats(); misses != 1 {
		t.Fatalf("misses = %d, want the follower to share the one computation", misses)
	}
}

// TestConcurrentIngestAndBrowse is the race gate for the whole live stack:
// ingestion POSTs, browse GETs and status reads all hammering one server.
// Run under -race this fails on any unsynchronized access.
func TestConcurrentIngestAndBrowse(t *testing.T) {
	store := newLiveStore(t, live.Config{Algo: live.AlgoMEuler, Areas: []float64{1, 9, 40},
		RebuildEvery: 8})
	srv := NewLiveServer("live", store, Options{Telemetry: telemetry.NewRegistry()})

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				x, y := r.Float64()*15, r.Float64()*15
				body, _ := json.Marshal(MutationRequest{Rects: [][4]float64{{x, y, x + 2, y + 3}}})
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/ingest", bytes.NewReader(body)))
				if rec.Code != http.StatusOK {
					t.Errorf("ingest: %d %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(int64(w))
	}
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, path := range []string{
					"/api/browse?x1=0&y1=0&x2=20&y2=20&cols=4&rows=4",
					"/api/query?x1=5&y1=5&x2=10&y2=10",
					"/api/store/status",
					"/api/info",
				} {
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
					if rec.Code != http.StatusOK {
						t.Errorf("%s: %d %s", path, rec.Code, rec.Body.String())
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if _, gen := store.CurrentEstimator(); gen < 2 {
		t.Fatalf("no snapshot swaps under load (gen %d)", gen)
	}
}
