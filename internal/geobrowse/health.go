package geobrowse

import "net/http"

// Health is the GET /healthz payload: a readiness probe for load
// generators, CI jobs and orchestration. It is intentionally cheap (no
// estimation work) so probing it never competes with browse traffic for
// admission slots.
type Health struct {
	// Status is "ok", or "draining" once a graceful shutdown began
	// (reported with a 503 so probes stop routing new traffic here).
	Status string `json:"status"`
	// Dataset names the served dataset (single-tenant servers) or is
	// empty for a tenant registry front.
	Dataset string `json:"dataset,omitempty"`
	// Generation is the serving snapshot's generation (0 for fixed
	// summaries and registry fronts).
	Generation uint64 `json:"generation"`
	// Tenants is how many datasets this process serves: 1 for a
	// single-dataset server, loaded-tenant count for a registry front.
	Tenants int `json:"tenants"`
}

// handleHealthz serves the single-dataset readiness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "ok", Dataset: s.name, Tenants: 1}
	_, h.Generation = s.src.CurrentEstimator()
	writeHealth(w, h, s.drain.Load())
}

// StartDrain flips the server into draining: /healthz turns 503 so
// probes and load generators stop sending new traffic, while in-flight
// and late-arriving API requests still complete (connection draining is
// http.Server.Shutdown's job). Call it just before Shutdown.
func (s *Server) StartDrain() { s.drain.Store(true) }

// writeHealth renders h, downgrading to draining/503 when drain is set.
func writeHealth(w http.ResponseWriter, h Health, drain bool) {
	if drain {
		h.Status = "draining"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(&committedWriter{w}, h)
		return
	}
	writeJSON(w, h)
}

// committedWriter suppresses the duplicate WriteHeader writeJSON would
// issue after the health handler already committed a 503.
type committedWriter struct{ http.ResponseWriter }

func (w *committedWriter) WriteHeader(int) {}
