package geobrowse

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"spatialhist/internal/archive"
	"spatialhist/internal/core"
	"spatialhist/internal/grid"
)

// ArchiveServer serves faceted browsing over a multi-attribute archive —
// the full GeoBrowsing interaction of the paper's Figure 1, where queries
// combine region, date range and subject types.
//
// Endpoints:
//
//	GET /api/info     archive metadata (subjects, date range, counts)
//	GET /api/browse   x1,y1,x2,y2,cols,rows[,subjects][,from,to]
//
// subjects is a comma-separated list of subject indices; from/to must
// align with the archive's date bands.
//
// Like Server, browse requests take the batch path per selected partition,
// large maps are split by tile row across a bounded worker pool, and
// responses are cached with single-flight deduplication, keyed by region,
// tiling and facets.
type ArchiveServer struct {
	name  string
	a     *archive.Archive
	mux   *http.ServeMux
	cache *browseCache
	sem   chan struct{}
	pool  *poolMetrics
}

// NewArchiveServer creates an ArchiveServer for a named archive with
// default options.
func NewArchiveServer(name string, a *archive.Archive) *ArchiveServer {
	return NewArchiveServerOpts(name, a, Options{})
}

// NewArchiveServerOpts creates an ArchiveServer with explicit serving
// options.
func NewArchiveServerOpts(name string, a *archive.Archive, opts Options) *ArchiveServer {
	opts = opts.withDefaults()
	s := &ArchiveServer{
		name:  name,
		a:     a,
		mux:   http.NewServeMux(),
		cache: newBrowseCache(opts.CacheSize, opts.Telemetry, opts.Tenant),
		sem:   make(chan struct{}, opts.Workers),
		pool:  newPoolMetrics(opts.Telemetry, opts.Workers),
	}
	// The facet endpoints run behind the same telemetry middleware as the
	// plain Server's, so archive traffic shows up in the identical metric
	// families.
	m := newHTTPMetrics(opts.Telemetry, opts.accessLogger(), opts.Tenant)
	s.mux.HandleFunc("GET /api/info", m.wrap("/api/info", s.handleInfo))
	s.mux.HandleFunc("GET /api/browse", m.wrap("/api/browse", s.handleBrowse))
	s.mux.Handle("GET /metrics", opts.Telemetry.Handler())
	return s
}

// ServeHTTP implements http.Handler.
func (s *ArchiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats reports browse-cache hits and misses.
func (s *ArchiveServer) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// ArchiveInfo is the archive /api/info response.
type ArchiveInfo struct {
	Archive        string     `json:"archive"`
	Records        int64      `json:"records"`
	StorageBuckets int        `json:"storageBuckets"`
	Subjects       []string   `json:"subjects"`
	DateLo         float64    `json:"dateLo"`
	DateHi         float64    `json:"dateHi"`
	DateBands      int        `json:"dateBands"`
	Extent         [4]float64 `json:"extent"`
	GridNX         int        `json:"gridNX"`
	GridNY         int        `json:"gridNY"`
}

func (s *ArchiveServer) handleInfo(w http.ResponseWriter, r *http.Request) {
	sc := s.a.Schema()
	ext := sc.Grid.Extent()
	writeJSON(w, ArchiveInfo{
		Archive:        s.name,
		Records:        s.a.Count(),
		StorageBuckets: s.a.StorageBuckets(),
		Subjects:       sc.Subjects,
		DateLo:         sc.DateLo,
		DateHi:         sc.DateHi,
		DateBands:      sc.DateBands,
		Extent:         [4]float64{ext.XMin, ext.YMin, ext.XMax, ext.YMax},
		GridNX:         sc.Grid.NX(),
		GridNY:         sc.Grid.NY(),
	})
}

// FacetedBrowseResponse is the archive /api/browse response.
type FacetedBrowseResponse struct {
	Cols     int            `json:"cols"`
	Rows     int            `json:"rows"`
	Matching int64          `json:"matching"` // records matching the facets
	Tiles    []TileEstimate `json:"tiles"`
}

func (s *ArchiveServer) handleBrowse(w http.ResponseWriter, r *http.Request) {
	sc := s.a.Schema()
	span, cols, rows, err := parseBrowse(sc.Grid, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	f := archive.Filter{}
	if raw := r.URL.Query().Get("subjects"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				http.Error(w, "parameter \"subjects\" must be a comma-separated list of indices",
					http.StatusBadRequest)
				return
			}
			f.Subjects = append(f.Subjects, idx)
		}
	}
	fromRaw, toRaw := r.URL.Query().Get("from"), r.URL.Query().Get("to")
	if (fromRaw == "") != (toRaw == "") {
		http.Error(w, "parameters \"from\" and \"to\" must be given together", http.StatusBadRequest)
		return
	}
	if fromRaw != "" {
		from, err1 := strconv.ParseFloat(fromRaw, 64)
		to, err2 := strconv.ParseFloat(toRaw, 64)
		if err1 != nil || err2 != nil {
			http.Error(w, "parameters \"from\"/\"to\" must be numbers", http.StatusBadRequest)
			return
		}
		f.DateFrom, f.DateTo = from, to
	}

	// The filter participates in the cache key via its raw parameters.
	facets := r.URL.Query().Get("subjects") + "|" + r.URL.Query().Get("from") + "|" + r.URL.Query().Get("to")
	key := browseKey(0, 0, span, cols, rows, facets)
	data, err := s.cache.Do(key, func() ([]byte, error) {
		matching, err := s.a.MatchCount(f)
		if err != nil {
			return nil, err
		}
		ests, err := rowParallel(s.sem, s.pool, span, cols, rows, func(sub grid.Span, subRows int) ([]core.Estimate, error) {
			return s.a.Browse(f, sub, cols, subRows)
		})
		if err != nil {
			return nil, err
		}
		resp := FacetedBrowseResponse{Cols: cols, Rows: rows, Matching: matching,
			Tiles: TileEstimates(sc.Grid, span, cols, rows, ests)}
		return json.Marshal(resp)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSONBytes(w, data)
}
