package geobrowse

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spatialhist/internal/archive"
	"spatialhist/internal/core"
	"spatialhist/internal/euler"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/telemetry"
)

func smallServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	g := grid.NewUnit(36, 18)
	rects := []geom.Rect{
		geom.NewRect(1.25, 1.25, 3.5, 2.5),
		geom.NewRect(10.5, 5.5, 14.5, 8.5),
		geom.NewRect(20.25, 10.25, 21.75, 11.75),
	}
	s := NewServerOpts("small", core.NewEuler(euler.FromRects(g, rects)), opts)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// metricValue extracts one series value from a Prometheus exposition.
func metricValue(t *testing.T, body, series string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("series %q not found in exposition:\n%s", series, body)
	}
	v, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsReflectBrowseRequest serves browse requests and asserts the
// /metrics endpoint reports them: request counters by endpoint and code,
// a latency histogram, response bytes, and cache traffic.
func TestMetricsReflectBrowseRequest(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := smallServer(t, Options{Telemetry: reg})
	browse := srv.URL + "/api/browse?x1=0&y1=0&x2=36&y2=18&cols=6&rows=3"

	if code, body := get(t, browse); code != http.StatusOK {
		t.Fatalf("browse status %d: %s", code, body)
	}
	_, body := get(t, srv.URL+"/metrics")

	if got := metricValue(t, body, `geobrowse_http_requests_total{code="200",endpoint="/api/browse"}`); got != 1 {
		t.Errorf("request counter = %d, want 1", got)
	}
	if got := metricValue(t, body, `geobrowse_http_request_seconds_count{endpoint="/api/browse"}`); got != 1 {
		t.Errorf("latency histogram count = %d, want 1", got)
	}
	if got := metricValue(t, body, `geobrowse_http_response_bytes_total{endpoint="/api/browse"}`); got <= 0 {
		t.Errorf("response bytes = %d, want > 0", got)
	}
	if got := metricValue(t, body, `geobrowse_cache_misses_total`); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}
	if got := metricValue(t, body, `geobrowse_cache_hits_total`); got != 0 {
		t.Errorf("cache hits = %d, want 0", got)
	}
	if got := metricValue(t, body, `geobrowse_cache_entries`); got != 1 {
		t.Errorf("cache entries = %d, want 1", got)
	}

	// A repeat of the same browse request is a cache hit, and a bad
	// request lands under its status code.
	get(t, browse)
	get(t, srv.URL+"/api/browse?x1=bogus")
	_, body = get(t, srv.URL+"/metrics")
	if got := metricValue(t, body, `geobrowse_cache_hits_total`); got != 1 {
		t.Errorf("cache hits after repeat = %d, want 1", got)
	}
	if got := metricValue(t, body, `geobrowse_http_requests_total{code="400",endpoint="/api/browse"}`); got != 1 {
		t.Errorf("400 counter = %d, want 1", got)
	}
	if got := metricValue(t, body, `geobrowse_http_requests_total{code="200",endpoint="/api/browse"}`); got != 2 {
		t.Errorf("200 counter after repeat = %d, want 2", got)
	}
}

// TestMetricsDefaultRegistryIncludesEstimatorCounters exercises the
// acceptance-criteria shape: a server on the default registry exposes the
// per-estimator core counters alongside the HTTP and cache families after
// serving a browse request (core instruments telemetry.Default()).
func TestMetricsDefaultRegistryIncludesEstimatorCounters(t *testing.T) {
	srv := smallServer(t, Options{})
	if code, body := get(t, srv.URL+"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=6&rows=3"); code != http.StatusOK {
		t.Fatalf("browse status %d: %s", code, body)
	}
	_, body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`core_tile_estimates_total{algo="EulerApprox"}`,
		`core_batch_sweeps_total{algo="EulerApprox"}`,
		`core_batch_sweep_seconds_count{algo="EulerApprox"}`,
		`geobrowse_http_requests_total{code="200",endpoint="/api/browse"}`,
		`geobrowse_cache_misses_total`,
		`geobrowse_pool_capacity`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestArchiveEndpointsShareMiddleware asserts the facet endpoints run
// behind the same instrumentation as the plain server's.
func TestArchiveEndpointsShareMiddleware(t *testing.T) {
	reg := telemetry.NewRegistry()
	b, err := archive.NewBuilder(archive.Schema{
		Grid:      grid.NewUnit(36, 18),
		Subjects:  []string{"map"},
		DateLo:    1900,
		DateHi:    2000,
		DateBands: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Add(archive.Record{MBR: geom.NewRect(2, 2, 4, 4), Date: 1905, Subject: 0}) {
		t.Fatal("record rejected")
	}
	s := NewArchiveServerOpts("arch", b.Build(), Options{Telemetry: reg})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	if code, body := get(t, srv.URL+"/api/info"); code != http.StatusOK {
		t.Fatalf("info status %d: %s", code, body)
	}
	_, body := get(t, srv.URL+"/metrics")
	if got := metricValue(t, body, `geobrowse_http_requests_total{code="200",endpoint="/api/info"}`); got != 1 {
		t.Errorf("archive info counter = %d, want 1", got)
	}
	if got := metricValue(t, body, `geobrowse_http_request_seconds_count{endpoint="/api/info"}`); got != 1 {
		t.Errorf("archive latency count = %d, want 1", got)
	}
}

// TestAccessLogLine asserts the structured request log emits one parseable
// line per request.
func TestAccessLogLine(t *testing.T) {
	var buf bytes.Buffer
	srv := smallServer(t, Options{Telemetry: telemetry.NewRegistry(), AccessLog: &buf})
	get(t, srv.URL+"/api/info")
	line := buf.String()
	for _, want := range []string{`"event":"request"`, `"endpoint":"/api/info"`, `"code":200`, `"duration_ms":`} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line %q missing %q", line, want)
		}
	}
}

// TestEncodeErrorCounted routes a marshal failure through writeJSON behind
// the middleware and checks it lands in the encode-error counter and a 500.
func TestEncodeErrorCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newHTTPMetrics(reg, nil, "")
	h := m.wrap("/boom", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, make(chan int)) // unmarshalable: server bug path
	})
	prevLogf := logf
	logf = func(string, ...any) {}
	defer func() { logf = prevLogf }()

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if got := reg.Counter("geobrowse_http_encode_errors_total", "").Value(); got != 1 {
		t.Errorf("encode errors = %d, want 1", got)
	}
	if got := reg.Counter("geobrowse_http_requests_total", "", "endpoint", "/boom", "code", "500").Value(); got != 1 {
		t.Errorf("500 counter = %d, want 1", got)
	}
}

// TestWriteErrorCounted simulates a client that went away mid-response.
func TestWriteErrorCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newHTTPMetrics(reg, nil, "")
	h := m.wrap("/gone", func(w http.ResponseWriter, r *http.Request) {
		writeJSONBytes(w, []byte(`{}`))
	})
	prevLogf := logf
	logf = func(string, ...any) {}
	defer func() { logf = prevLogf }()

	h(&failingWriter{httptest.NewRecorder()}, httptest.NewRequest("GET", "/gone", nil))
	if got := reg.Counter("geobrowse_http_write_errors_total", "").Value(); got != 1 {
		t.Errorf("write errors = %d, want 1", got)
	}
}

type failingWriter struct{ *httptest.ResponseRecorder }

func (w *failingWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("broken pipe")
}
