package geobrowse

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialhist/internal/core"
	"spatialhist/internal/euler"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/telemetry"
)

// newTestHTTPServer serves the small fixed dataset of testServer with
// explicit options, for admission and health tests.
func newTestHTTPServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	g := grid.NewUnit(36, 18)
	h := euler.FromRects(g, []geom.Rect{
		geom.NewRect(2, 2, 4, 4),
		geom.NewRect(10, 5, 30, 15),
	})
	srv := httptest.NewServer(NewServerOpts("testdata", core.NewEuler(h), opts))
	t.Cleanup(srv.Close)
	return srv
}

func testLimiter(t *testing.T, cfg AdmissionConfig) (*Limiter, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	l := NewLimiter(cfg)
	if l == nil {
		t.Fatal("NewLimiter returned nil for a positive MaxInflight")
	}
	return l, reg
}

func TestLimiterDisabled(t *testing.T) {
	if l := NewLimiter(AdmissionConfig{}); l != nil {
		t.Fatal("MaxInflight 0 must disable admission control")
	}
	var l *Limiter
	release, err := l.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("nil limiter must admit: %v", err)
	}
	release()
	if in, q := l.Stats(); in != 0 || q != 0 {
		t.Fatalf("nil limiter stats = %d,%d", in, q)
	}
}

func TestLimiterAdmitsUpToCapacity(t *testing.T) {
	l, _ := testLimiter(t, AdmissionConfig{MaxInflight: 3, ShedAfter: 300 * time.Millisecond, MaxQueue: 1})
	var releases []func()
	for i := 0; i < 3; i++ {
		release, err := l.Acquire(context.Background(), "a")
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, release)
	}
	if in, _ := l.Stats(); in != 3 {
		t.Fatalf("inflight = %d, want 3", in)
	}
	// Capacity full, queue capacity 1: the 4th waits then times out, the
	// 5th (queued behind it) is shed immediately.
	done := make(chan error, 1)
	go func() {
		_, err := l.Acquire(context.Background(), "a")
		done <- err
	}()
	// Wait until the 4th occupies the queue so the 5th sees it full.
	for i := 0; ; i++ {
		if _, q := l.Stats(); q == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("4th acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Acquire(context.Background(), "a"); !errors.Is(err, ErrShedQueueFull) {
		t.Fatalf("over-queue acquire = %v, want ErrShedQueueFull", err)
	}
	if err := <-done; !errors.Is(err, ErrShedTimeout) {
		t.Fatalf("queued acquire = %v, want ErrShedTimeout", err)
	}
	for _, r := range releases {
		r()
	}
	if in, q := l.Stats(); in != 0 || q != 0 {
		t.Fatalf("after release: inflight %d queued %d", in, q)
	}
}

func TestLimiterBoundedWait(t *testing.T) {
	l, _ := testLimiter(t, AdmissionConfig{MaxInflight: 1, ShedAfter: 30 * time.Millisecond})
	release, err := l.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := l.Acquire(context.Background(), "a"); !errors.Is(err, ErrShedTimeout) {
		t.Fatalf("want timeout shed, got %v", err)
	}
	if wait := time.Since(start); wait < 25*time.Millisecond || wait > 5*time.Second {
		t.Fatalf("shed after %v, want ≈30ms", wait)
	}
	release()

	// A waiter that gets its slot within the bound is admitted.
	release, err = l.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		release()
	}()
	release2, err := l.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatalf("waiter within the bound must be admitted: %v", err)
	}
	release2()
}

func TestLimiterContextCancel(t *testing.T) {
	l, _ := testLimiter(t, AdmissionConfig{MaxInflight: 1, ShedAfter: time.Minute})
	release, err := l.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := l.Acquire(ctx, "a"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestLimiterTenantFairness floods tenant "hog" with waiters while
// tenant "mouse" queues a few: freed slots must alternate between the
// tenants, so mouse's small queue drains in its first few grants rather
// than behind the hog's backlog.
func TestLimiterTenantFairness(t *testing.T) {
	l, _ := testLimiter(t, AdmissionConfig{MaxInflight: 1, ShedAfter: time.Minute, MaxQueue: 64})
	release, err := l.Acquire(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}

	const hogs, mice = 20, 3
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	admitted := func(tenant string) {
		mu.Lock()
		order = append(order, tenant)
		mu.Unlock()
	}
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, err := l.Acquire(context.Background(), tenant)
				if err != nil {
					t.Errorf("%s: %v", tenant, err)
					return
				}
				admitted(tenant)
				rel()
			}()
		}
	}
	enqueue("hog", hogs)
	// Wait for the hog backlog to queue before the mice arrive, so the
	// test observes fairness, not arrival order.
	for i := 0; ; i++ {
		if _, q := l.Stats(); q == hogs {
			break
		}
		if i > 5000 {
			t.Fatal("hog backlog never queued")
		}
		time.Sleep(time.Millisecond)
	}
	enqueue("mouse", mice)
	for i := 0; ; i++ {
		if _, q := l.Stats(); q == hogs+mice {
			break
		}
		if i > 5000 {
			t.Fatal("mice never queued")
		}
		time.Sleep(time.Millisecond)
	}

	release() // start draining
	wg.Wait()

	// Round-robin over two tenants admits every mouse within the first
	// 2*mice grants (alternating), far ahead of FIFO order which would
	// put them after all 20 hogs.
	lastMouse := -1
	for i, tenant := range order {
		if tenant == "mouse" {
			lastMouse = i
		}
	}
	if lastMouse == -1 || lastMouse >= 2*mice+1 {
		t.Fatalf("last mouse admitted at position %d of %d; round-robin should interleave (order %v)",
			lastMouse, len(order), order)
	}
}

func TestLimiterShedAccounting(t *testing.T) {
	l, reg := testLimiter(t, AdmissionConfig{MaxInflight: 1, ShedAfter: 5 * time.Millisecond, MaxQueue: 1})
	release, err := l.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var timeouts, fulls atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := l.Acquire(context.Background(), "a")
			switch {
			case errors.Is(err, ErrShedTimeout):
				timeouts.Add(1)
			case errors.Is(err, ErrShedQueueFull):
				fulls.Add(1)
			case err == nil:
				t.Error("no slot should free while the holder sleeps")
			}
		}()
	}
	wg.Wait()
	release()
	if timeouts.Load() == 0 || fulls.Load() == 0 {
		t.Fatalf("want both shed reasons, got timeouts=%d queue_full=%d", timeouts.Load(), fulls.Load())
	}
	vals := reg.CounterValues("geobrowse_admission_shed_total")
	var total int64
	for _, v := range vals {
		total += v
	}
	if total != timeouts.Load()+fulls.Load() {
		t.Fatalf("shed counter total %d != observed %d (%v)", total, timeouts.Load()+fulls.Load(), vals)
	}
	if v := vals[`{reason="timeout",tenant="a"}`]; v != timeouts.Load() {
		t.Fatalf("timeout series = %d, want %d (%v)", v, timeouts.Load(), vals)
	}
}

// TestAdmissionHTTP drives the limiter through the browse endpoint: with
// one slot held by a slow request, concurrent identical requests are
// shed with 429 + Retry-After.
func TestAdmissionHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	limiter := NewLimiter(AdmissionConfig{
		MaxInflight: 1, ShedAfter: 5 * time.Millisecond, MaxQueue: 1, Telemetry: reg,
	})
	srv := newTestHTTPServer(t, Options{Telemetry: reg, Limiter: limiter})

	// Hold the only slot via a request that blocks in the handler by
	// acquiring out-of-band.
	release, err := limiter.Acquire(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/api/query?x1=0&y1=0&x2=6&y2=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	release()

	resp, err = http.Get(srv.URL + "/api/query?x1=0&y1=0&x2=6&y2=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp.StatusCode)
	}
	// /api/info and /healthz stay outside admission control.
	for _, path := range []string{"/api/info", "/healthz"} {
		release, err := limiter.Acquire(context.Background(), "")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s under full admission = %d, want 200", path, resp.StatusCode)
		}
		release()
	}

	sheds := reg.CounterValues("geobrowse_admission_shed_total")
	if len(sheds) == 0 {
		t.Fatal("shed counter never recorded")
	}
	for label := range sheds {
		if !strings.Contains(label, `tenant=""`) {
			t.Fatalf("unexpected shed label %q", label)
		}
	}
}
