package geobrowse

import (
	"context"
	"errors"
	"sync"
	"time"

	"spatialhist/internal/telemetry"
)

// Admission control for the browse path. Estimation work is CPU-bound and
// the tile-row pool already bounds intra-request parallelism; what it does
// not bound is how many requests queue *behind* the pool when offered load
// exceeds capacity. Past that point every request's latency grows without
// bound while throughput stays flat — the classic overload collapse. The
// Limiter keeps the knee sharp: at most MaxInflight browse-path requests
// run at once, a bounded number wait for a bounded time, and everything
// beyond that is shed immediately with 429 + Retry-After so clients back
// off instead of piling on.
//
// Waiters are queued per tenant and admitted round-robin across tenants,
// so one tenant flooding the queue cannot starve another: under
// contention each tenant with pending work gets an equal share of freed
// slots regardless of queue depth.

// Shed reasons, used as the reason label of
// geobrowse_admission_shed_total.
const (
	shedQueueFull = "queue_full"
	shedTimeout   = "timeout"
	shedCanceled  = "canceled"
)

// ErrShedQueueFull is returned by Acquire when the wait queue is at its
// bound; the request should be shed immediately.
var ErrShedQueueFull = errors.New("geobrowse: admission queue full")

// ErrShedTimeout is returned by Acquire when a request waited ShedAfter
// without getting a slot.
var ErrShedTimeout = errors.New("geobrowse: admission wait timed out")

// AdmissionConfig tunes a Limiter.
type AdmissionConfig struct {
	// MaxInflight bounds concurrently admitted browse-path requests.
	// Values <= 0 disable admission control (NewLimiter returns nil).
	MaxInflight int
	// ShedAfter bounds how long a request may wait for a slot before it
	// is shed with 429. 0 means DefaultShedAfter.
	ShedAfter time.Duration
	// MaxQueue bounds the total number of waiting requests across all
	// tenants. 0 means 4*MaxInflight.
	MaxQueue int
	// Telemetry receives the limiter's metrics. nil means
	// telemetry.Default().
	Telemetry *telemetry.Registry
}

// DefaultShedAfter is the wait bound when AdmissionConfig.ShedAfter is 0.
const DefaultShedAfter = 250 * time.Millisecond

// waiter is one queued request. granted and the channel close are flipped
// together under the limiter lock, so a timeout racing a grant can tell
// which side won.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// tenantQueue is one tenant's FIFO of waiters; tenants with a non-empty
// queue sit in the limiter's round-robin ring.
type tenantQueue struct {
	waiters []*waiter
}

// Limiter is a tenant-fair concurrency limiter with bounded wait. The
// zero value is not usable; a nil *Limiter admits everything (see
// Acquire), so servers can hold one unconditionally.
type Limiter struct {
	mu        sync.Mutex
	capacity  int
	inflight  int
	queued    int
	maxQueue  int
	shedAfter time.Duration
	queues    map[string]*tenantQueue
	ring      []*tenantQueue // tenants with waiters, round-robin order
	next      int            // ring index served next

	mInflight *telemetry.Gauge
	mQueue    *telemetry.Gauge
	reg       *telemetry.Registry
	mWait     *telemetry.Histogram
}

// NewLimiter builds a Limiter from cfg, or returns nil (admit everything)
// when MaxInflight <= 0.
func NewLimiter(cfg AdmissionConfig) *Limiter {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	if cfg.ShedAfter <= 0 {
		cfg.ShedAfter = DefaultShedAfter
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInflight
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default()
	}
	reg.Gauge("geobrowse_admission_capacity",
		"Maximum concurrently admitted browse-path requests.").Set(int64(cfg.MaxInflight))
	return &Limiter{
		capacity:  cfg.MaxInflight,
		maxQueue:  cfg.MaxQueue,
		shedAfter: cfg.ShedAfter,
		queues:    make(map[string]*tenantQueue),
		reg:       reg,
		mInflight: reg.Gauge("geobrowse_admission_inflight",
			"Browse-path requests currently holding an admission slot."),
		mQueue: reg.Gauge("geobrowse_admission_queue_depth",
			"Browse-path requests waiting for an admission slot."),
		mWait: reg.Histogram("geobrowse_admission_wait_seconds",
			"Time admitted requests spent waiting for a slot.", nil),
	}
}

// shed counts one shed request by tenant and reason. Labels are created
// through the registry's get-or-create path; tenant cardinality is
// bounded by the registry's configured tenants.
func (l *Limiter) shed(tenant, reason string) {
	l.reg.Counter("geobrowse_admission_shed_total",
		"Browse-path requests shed with 429, by tenant and reason.",
		"tenant", tenant, "reason", reason).Inc()
}

// Acquire admits one request for tenant, blocking up to the configured
// wait bound when all slots are busy. It returns a release callback the
// caller must invoke when the request is done, or an error when the
// request was shed (queue full, wait bound exceeded, or context
// canceled). A nil Limiter admits immediately.
func (l *Limiter) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	if l == nil {
		return func() {}, nil
	}
	l.mu.Lock()
	if l.inflight < l.capacity && l.queued == 0 {
		l.inflight++
		l.mInflight.Set(int64(l.inflight))
		l.mu.Unlock()
		return l.releaseFunc(), nil
	}
	if l.queued >= l.maxQueue {
		l.mu.Unlock()
		l.shed(tenant, shedQueueFull)
		return nil, ErrShedQueueFull
	}
	w := &waiter{ch: make(chan struct{})}
	l.enqueueLocked(tenant, w)
	// A slot may have freed between the fast-path check and the enqueue;
	// granting under the same lock keeps the queue drained.
	l.grantLocked()
	l.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(l.shedAfter)
	defer timer.Stop()
	select {
	case <-w.ch:
		l.mWait.ObserveDuration(time.Since(start))
		return l.releaseFunc(), nil
	case <-timer.C:
		if l.cancelWaiter(tenant, w) {
			l.shed(tenant, shedTimeout)
			return nil, ErrShedTimeout
		}
		// The grant won the race: the slot is ours.
		l.mWait.ObserveDuration(time.Since(start))
		return l.releaseFunc(), nil
	case <-ctx.Done():
		if l.cancelWaiter(tenant, w) {
			l.shed(tenant, shedCanceled)
			return nil, ctx.Err()
		}
		l.mWait.ObserveDuration(time.Since(start))
		return l.releaseFunc(), nil
	}
}

// releaseFunc returns the callback that frees one slot and hands it to
// the next waiter round-robin.
func (l *Limiter) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			l.inflight--
			l.grantLocked()
			l.mInflight.Set(int64(l.inflight))
			l.mu.Unlock()
		})
	}
}

// enqueueLocked appends w to tenant's FIFO, adding the tenant to the
// round-robin ring on its first waiter.
func (l *Limiter) enqueueLocked(tenant string, w *waiter) {
	q := l.queues[tenant]
	if q == nil {
		q = &tenantQueue{}
		l.queues[tenant] = q
	}
	if len(q.waiters) == 0 {
		l.ring = append(l.ring, q)
	}
	q.waiters = append(q.waiters, w)
	l.queued++
	l.mQueue.Set(int64(l.queued))
}

// grantLocked hands free slots to waiting requests, one tenant at a time
// in ring order, so concurrent tenants drain their queues at the same
// rate regardless of depth.
func (l *Limiter) grantLocked() {
	for l.inflight < l.capacity && len(l.ring) > 0 {
		if l.next >= len(l.ring) {
			l.next = 0
		}
		q := l.ring[l.next]
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		l.queued--
		if len(q.waiters) == 0 {
			l.ring = append(l.ring[:l.next], l.ring[l.next+1:]...)
			// next now points at the following tenant; no advance.
		} else {
			l.next++
		}
		l.inflight++
		w.granted = true
		close(w.ch)
	}
	l.mInflight.Set(int64(l.inflight))
	l.mQueue.Set(int64(l.queued))
}

// cancelWaiter removes w from tenant's queue if it has not been granted
// yet. It reports true when the waiter was removed (the caller sheds) and
// false when the grant won the race (the caller owns a slot).
func (l *Limiter) cancelWaiter(tenant string, w *waiter) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.granted {
		return false
	}
	q := l.queues[tenant]
	for i, cand := range q.waiters {
		if cand == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			l.queued--
			l.mQueue.Set(int64(l.queued))
			break
		}
	}
	if len(q.waiters) == 0 {
		for i, rq := range l.ring {
			if rq == q {
				l.ring = append(l.ring[:i], l.ring[i+1:]...)
				if i < l.next {
					l.next--
				}
				break
			}
		}
	}
	return true
}

// Stats reports the limiter's instantaneous occupancy, for tests and
// health reporting.
func (l *Limiter) Stats() (inflight, queued int) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight, l.queued
}
