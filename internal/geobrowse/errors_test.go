package geobrowse

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialhist/internal/live"
	"spatialhist/internal/telemetry"
)

// TestLiveServerErrorPaths is the table of every way a request to the live
// browse stack can be malformed, and the status code plus telemetry each
// must produce. Nothing here may come back 200: a handler that accepts a
// broken request corrupts the caller's mental model of what was applied.
func TestLiveServerErrorPaths(t *testing.T) {
	reg := telemetry.NewRegistry()
	store := newLiveStore(t, live.Config{})
	srv := NewLiveServer("errs", store, Options{Telemetry: reg})

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
		// endpoint is the route label the middleware must count the
		// request under; empty when the mux rejects it before wrap runs
		// (wrong-method requests never reach a handler).
		endpoint string
		wantFrag string
	}{
		{name: "ingest empty body", method: "POST", path: "/api/ingest", body: "",
			wantCode: 400, endpoint: "/api/ingest", wantFrag: "decoding body"},
		{name: "ingest malformed json", method: "POST", path: "/api/ingest", body: `{"rects":[[1,1`,
			wantCode: 400, endpoint: "/api/ingest", wantFrag: "decoding body"},
		{name: "ingest wrong type", method: "POST", path: "/api/ingest", body: `{"rects":"nope"}`,
			wantCode: 400, endpoint: "/api/ingest", wantFrag: "decoding body"},
		{name: "ingest no rects", method: "POST", path: "/api/ingest", body: `{"rects":[]}`,
			wantCode: 400, endpoint: "/api/ingest", wantFrag: "at least one rect"},
		{name: "ingest trailing garbage", method: "POST", path: "/api/ingest",
			body:     `{"rects":[[1,1,2,2]]}garbage`,
			wantCode: 400, endpoint: "/api/ingest", wantFrag: "trailing data"},
		{name: "ingest second json value", method: "POST", path: "/api/ingest",
			body:     `{"rects":[[1,1,2,2]]}{"rects":[[3,3,4,4]]}`,
			wantCode: 400, endpoint: "/api/ingest", wantFrag: "trailing data"},
		{name: "delete trailing garbage", method: "POST", path: "/api/delete",
			body:     `{"rects":[[1,1,2,2]]} extra`,
			wantCode: 400, endpoint: "/api/delete", wantFrag: "trailing data"},
		{name: "ingest wrong method", method: "GET", path: "/api/ingest",
			wantCode: 405},
		{name: "delete wrong method", method: "PUT", path: "/api/delete", body: `{"rects":[[1,1,2,2]]}`,
			wantCode: 405},
		{name: "status wrong method", method: "POST", path: "/api/store/status",
			wantCode: 405},
		{name: "browse missing region", method: "GET", path: "/api/browse?cols=4&rows=4",
			wantCode: 400, endpoint: "/api/browse", wantFrag: `missing parameter "x1"`},
		{name: "browse bad float", method: "GET", path: "/api/browse?x1=zero&y1=0&x2=20&y2=20&cols=4&rows=4",
			wantCode: 400, endpoint: "/api/browse", wantFrag: `parameter "x1"`},
		{name: "browse misaligned region", method: "GET", path: "/api/browse?x1=0.37&y1=0&x2=20&y2=20&cols=4&rows=4",
			wantCode: 400, endpoint: "/api/browse", wantFrag: "region"},
		{name: "browse region outside space", method: "GET", path: "/api/browse?x1=-40&y1=0&x2=20&y2=20&cols=4&rows=4",
			wantCode: 400, endpoint: "/api/browse"},
		{name: "browse zero cols", method: "GET", path: "/api/browse?x1=0&y1=0&x2=20&y2=20&cols=0&rows=4",
			wantCode: 400, endpoint: "/api/browse", wantFrag: `parameter "cols"`},
		{name: "browse negative rows", method: "GET", path: "/api/browse?x1=0&y1=0&x2=20&y2=20&cols=4&rows=-1",
			wantCode: 400, endpoint: "/api/browse", wantFrag: `parameter "rows"`},
		{name: "browse non-dividing tiling", method: "GET", path: "/api/browse?x1=0&y1=0&x2=20&y2=20&cols=3&rows=4",
			wantCode: 400, endpoint: "/api/browse"},
		{name: "browse tile limit", method: "GET", path: "/api/browse?x1=0&y1=0&x2=20&y2=20&cols=40000&rows=40000",
			wantCode: 400, endpoint: "/api/browse", wantFrag: "exceeds"},
		{name: "query missing params", method: "GET", path: "/api/query?x1=1",
			wantCode: 400, endpoint: "/api/query", wantFrag: "missing parameter"},
		{name: "drill bad relation", method: "GET", path: "/api/drill?x1=0&y1=0&x2=20&y2=20&relation=sideways",
			wantCode: 400, endpoint: "/api/drill"},
		{name: "unknown path", method: "GET", path: "/api/nothing",
			wantCode: 404},
	}

	// Every (endpoint, code) series this table exercises, counted before
	// the requests run so the assertions below are increments, not totals.
	before := map[[2]string]int64{}
	for _, tc := range cases {
		if tc.endpoint != "" {
			key := [2]string{tc.endpoint, "400"}
			before[key] = reg.Counter(metricRequests, "", "endpoint", key[0], "code", key[1]).Value()
		}
	}
	wantInc := map[[2]string]int64{}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, body))
			if rec.Code != tc.wantCode {
				t.Fatalf("%s %s: code %d, want %d (body %q)", tc.method, tc.path, rec.Code, tc.wantCode, rec.Body.String())
			}
			if tc.wantFrag != "" && !strings.Contains(rec.Body.String(), tc.wantFrag) {
				t.Fatalf("%s %s: body %q does not explain the failure (want %q)", tc.method, tc.path, rec.Body.String(), tc.wantFrag)
			}
			if tc.endpoint != "" && tc.wantCode == 400 {
				wantInc[[2]string{tc.endpoint, "400"}]++
			}
		})
	}

	for key, inc := range wantInc {
		got := reg.Counter(metricRequests, "", "endpoint", key[0], "code", key[1]).Value() - before[key]
		if got != inc {
			t.Errorf("requests_total{endpoint=%q,code=%q} grew by %d, want %d", key[0], key[1], got, inc)
		}
	}

	// None of the malformed requests may have mutated the store.
	if n := store.Status().LiveObjects; n != 0 {
		t.Fatalf("error-path requests changed the store: %d objects", n)
	}
}

// TestMutationRejectsTrailingGarbageButAppliesCleanBody pins the repaired
// behavior from both sides: the exact same rects that 400 with a trailing
// byte are applied when the body is clean.
func TestMutationRejectsTrailingGarbageButAppliesCleanBody(t *testing.T) {
	store := newLiveStore(t, live.Config{})
	srv := NewLiveServer("trail", store, Options{Telemetry: telemetry.NewRegistry()})

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/api/ingest?flush=1",
		strings.NewReader(`{"rects":[[1,1,3,3],[5,5,8,8]]}]`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("trailing byte accepted: %d %s", rec.Code, rec.Body.String())
	}
	if n := store.Status().LiveObjects; n != 0 {
		t.Fatalf("rejected request still applied %d rects", n)
	}

	rec, resp := postJSON(t, srv, "/api/ingest?flush=1",
		MutationRequest{Rects: [][4]float64{{1, 1, 3, 3}, {5, 5, 8, 8}}})
	if rec.Code != http.StatusOK || resp.Applied != 2 {
		t.Fatalf("clean body: %d applied=%d (%s)", rec.Code, resp.Applied, rec.Body.String())
	}
	if n := store.Status().LiveObjects; n != 2 {
		t.Fatalf("store holds %d objects, want 2", n)
	}
}
