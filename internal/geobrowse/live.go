package geobrowse

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"spatialhist/internal/core"
	"spatialhist/internal/geom"
	"spatialhist/internal/live"
)

// EstimatorSource supplies the estimator a request is answered with,
// together with the generation it belongs to. Fixed summaries are always
// generation 0; a live store advances the generation at every snapshot
// swap, which is what keys browse-cache invalidation.
//
// Implementations must be safe for concurrent use and must return
// estimators that never change after being returned (the live store's
// snapshots are immutable by construction).
type EstimatorSource interface {
	CurrentEstimator() (core.Estimator, uint64)
}

// PinnedEstimatorSource is an EstimatorSource whose estimators are pinned
// for the duration of a request: AcquireEstimator additionally returns a
// release callback the handler invokes when done, which lets a live store
// recycle the generation's histogram buffers instead of leaving them to
// the garbage collector. Sources that cannot pin fall back to
// CurrentEstimator via acquireEstimator.
type PinnedEstimatorSource interface {
	EstimatorSource
	AcquireEstimator() (core.Estimator, uint64, func())
}

// acquireEstimator resolves a request's estimator from src, pinning it
// when the source supports pinning. The returned release is never nil and
// must be called when the request is done with the estimator.
func acquireEstimator(src EstimatorSource) (core.Estimator, uint64, func()) {
	if p, ok := src.(PinnedEstimatorSource); ok {
		return p.AcquireEstimator()
	}
	est, gen := src.CurrentEstimator()
	return est, gen, func() {}
}

// The live store is the pinning source the browse stack is built for.
var _ PinnedEstimatorSource = (*live.Store)(nil)

// StaticSource adapts a fixed estimator to the EstimatorSource contract at
// generation 0.
func StaticSource(est core.Estimator) EstimatorSource { return staticSource{est} }

type staticSource struct{ est core.Estimator }

func (s staticSource) CurrentEstimator() (core.Estimator, uint64) { return s.est, 0 }

// maxMutationRects bounds one ingestion request body.
const maxMutationRects = 100_000

// NewLiveServer creates a Server over a live ingestion store: the browse
// endpoints read the store's current snapshot, and three extra endpoints
// mutate and observe it:
//
//	POST /api/ingest        insert object MBRs ({"rects":[[x1,y1,x2,y2],...]})
//	POST /api/delete        delete previously inserted MBRs (same body)
//	GET  /api/store/status  generation, staleness and journal size
//
// Mutations become visible when the store's rebuild policy publishes the
// next snapshot (or immediately with ?flush=1); until then browse traffic
// keeps reading the current generation, and the generation-tagged cache
// keys guarantee a swap is never served from a stale entry.
func NewLiveServer(name string, store *live.Store, opts Options) *Server {
	opts = opts.withDefaults()
	s := NewSourceServer(name, store, opts)
	m := newHTTPMetrics(opts.Telemetry, opts.accessLogger(), opts.Tenant)
	s.mux.HandleFunc("POST /api/ingest", m.wrap("/api/ingest", func(w http.ResponseWriter, r *http.Request) {
		s.handleMutation(w, r, store, store.Insert)
	}))
	s.mux.HandleFunc("POST /api/delete", m.wrap("/api/delete", func(w http.ResponseWriter, r *http.Request) {
		s.handleMutation(w, r, store, store.Delete)
	}))
	s.mux.HandleFunc("GET /api/store/status", m.wrap("/api/store/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, store.Status())
	}))
	return s
}

// MutationRequest is the body of POST /api/ingest and /api/delete.
type MutationRequest struct {
	// Rects are object MBRs as [x1,y1,x2,y2] quadruples.
	Rects [][4]float64 `json:"rects"`
}

// MutationResponse reports what an ingestion request did.
type MutationResponse struct {
	// Applied counts mutations that changed the store.
	Applied int `json:"applied"`
	// Rejected counts mutations that did not (outside the data space, or a
	// delete with nothing to remove). They are journaled regardless.
	Rejected int `json:"rejected"`
	// Generation is the published generation after the request (only past
	// this generation are the mutations visible to browsing).
	Generation uint64 `json:"generation"`
}

// handleMutation decodes a mutation body and feeds every MBR through op.
func (s *Server) handleMutation(w http.ResponseWriter, r *http.Request,
	store *live.Store, op func(geom.Rect) (bool, error)) {
	var req MutationRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("decoding body: %v", err), http.StatusBadRequest)
		return
	}
	// The body must be exactly one JSON value: trailing bytes mean a
	// truncated or concatenated request, and applying its prefix would
	// silently drop the rest.
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		http.Error(w, "trailing data after JSON body", http.StatusBadRequest)
		return
	}
	if len(req.Rects) == 0 {
		http.Error(w, "body must carry at least one rect", http.StatusBadRequest)
		return
	}
	if len(req.Rects) > maxMutationRects {
		http.Error(w, fmt.Sprintf("at most %d rects per request, got %d", maxMutationRects, len(req.Rects)),
			http.StatusBadRequest)
		return
	}
	var resp MutationResponse
	for _, q := range req.Rects {
		ok, err := op(geom.NewRect(q[0], q[1], q[2], q[3]))
		switch {
		case err != nil:
			// The store is closed or its journal failed; nothing later in
			// the batch can succeed.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case ok:
			resp.Applied++
		default:
			resp.Rejected++
		}
	}
	if r.URL.Query().Get("flush") == "1" {
		if err := store.Flush(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	resp.Generation = store.Generation()
	writeJSON(w, resp)
}
