// Package geobrowse implements a small HTTP version of the GeoBrowsing
// service of §1: clients select a region of a spatial dataset, grid it
// into tiles, and receive per-tile Level 2 relation counts estimated from
// the dataset's Euler histograms — the "hundreds of trial queries with a
// single click" interaction, without touching the actual objects.
//
// Endpoints:
//
//	GET /            minimal built-in heat-map client
//	GET /api/info    dataset and summary metadata
//	GET /api/query   one estimate: x1,y1,x2,y2
//	GET /api/browse  tiled estimates: x1,y1,x2,y2,cols,rows
//	GET /api/drill   adaptive refinement: x1,y1,x2,y2,relation,hot,depth
//
// All coordinates must align with the summary's grid resolution, matching
// the paper's queries-at-resolution model; misaligned requests get 400s.
//
// Browse requests take the batch estimation path: the whole tile map is
// answered in one sweep per histogram (core.EstimateGrid), large maps are
// split by tile row across a bounded worker pool shared by all requests,
// and responses are cached in a small LRU with single-flight deduplication
// so identical concurrent requests are computed once.
package geobrowse

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"spatialhist/internal/core"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/query"
	"spatialhist/internal/telemetry"
)

// logf reports server-side I/O and encoding problems; a variable so tests
// can capture it.
var logf = log.Printf

// maxTiles bounds one browse response; it doubles as the individual bound
// on cols and rows so their product cannot overflow before the check.
const maxTiles = 100_000

// browseParallelMinTiles is the tile-map size from which a browse request
// is split across the worker pool; smaller maps run inline on the request
// goroutine.
const browseParallelMinTiles = 4096

// Options tunes a Server's serving machinery.
type Options struct {
	// CacheSize bounds the browse-response LRU in entries. 0 means the
	// default (64); negative disables storage while keeping single-flight
	// deduplication of concurrent identical requests.
	CacheSize int
	// Workers bounds the pool that large tile maps are fanned across,
	// shared by all in-flight requests. 0 means GOMAXPROCS.
	Workers int
	// Telemetry receives the server's runtime metrics and backs its
	// /metrics endpoint. nil means telemetry.Default().
	Telemetry *telemetry.Registry
	// AccessLog, when non-nil, receives one structured JSON line per API
	// request (endpoint, status, bytes, duration).
	AccessLog io.Writer
	// Tenant labels this server's request and cache metrics when serving
	// as one tenant of a Registry, and names the tenant in admission
	// accounting. Empty for single-dataset servers.
	Tenant string
	// Limiter applies admission control to the browse-path endpoints
	// (query, browse, drill): bounded concurrency, bounded wait,
	// 429 load-shedding. nil admits everything. A Registry shares one
	// Limiter across its tenants so fairness spans the process.
	Limiter *Limiter
	// OverviewEpsilon opts browse maps into the ε-approximate reduced
	// tier: when the estimator carries one (zoom stacks over pyramids
	// ≥ 3 levels deep), overview tile maps are served from 1/16 the
	// lattice memory whenever every tile certifies within
	// OverviewEpsilon·|tile| objects of the exact answer; uncertifiable
	// or drill-depth maps fall back to the exact sweep. Served responses
	// carry the certified bound in approxErrorBound. 0 disables —
	// every map is exact.
	OverviewEpsilon float64

	// sem and pool, when set, share one tile-row worker pool across
	// servers (the Registry sets them so N tenants contend for one CPU
	// budget instead of N).
	sem  chan struct{}
	pool *poolMetrics
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 64
	}
	if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.Default()
	}
	return o
}

// accessLogger builds the optional request logger.
func (o Options) accessLogger() *telemetry.Logger {
	if o.AccessLog == nil {
		return nil
	}
	return telemetry.NewLogger(o.AccessLog)
}

// poolMetrics observes the shared tile-row worker pool: how many slots are
// in use and how many row bands have been dispatched.
type poolMetrics struct {
	active *telemetry.Gauge
	bands  *telemetry.Counter
}

func newPoolMetrics(reg *telemetry.Registry, capacity int) *poolMetrics {
	reg.Gauge("geobrowse_pool_capacity",
		"Size of the shared tile-row worker pool.").Set(int64(capacity))
	return &poolMetrics{
		active: reg.Gauge("geobrowse_pool_active_workers",
			"Tile-row workers currently holding a pool slot."),
		bands: reg.Counter("geobrowse_pool_bands_total",
			"Tile-row bands dispatched to the worker pool."),
	}
}

// Server answers browsing queries over one summarized dataset. The
// estimator is resolved per request through an EstimatorSource, so a
// Server can front either a fixed summary (the source always returns the
// same estimator at generation 0) or a live ingestion store whose
// snapshots advance generations.
type Server struct {
	name    string
	src     EstimatorSource
	g       *grid.Grid // constant across generations
	mux     *http.ServeMux
	cache   *browseCache
	sem     chan struct{} // bounded tile-row worker pool
	pool    *poolMetrics
	tenant  string
	limiter *Limiter
	epsilon float64 // ε-approximate overview serving; 0 = exact only
	drain   atomic.Bool

	approx *telemetry.Counter // browse maps served from the reduced tier
	warms  *telemetry.Counter // drill-triggered cache warmups
	warmWG sync.WaitGroup     // in-flight warmers, awaited by tests and Close paths
}

// NewServer creates a Server for a named dataset summarized by est, with
// default options.
func NewServer(name string, est core.Estimator) *Server {
	return NewServerOpts(name, est, Options{})
}

// NewServerOpts creates a Server with explicit serving options.
func NewServerOpts(name string, est core.Estimator, opts Options) *Server {
	return NewSourceServer(name, StaticSource(est), opts)
}

// NewSourceServer creates a Server whose estimator is resolved per request
// from src. Each handler resolves the estimator once, so a snapshot swap
// mid-request is invisible to that request; the browse cache tags its keys
// with the generation, so a swap invalidates exactly the stale entries
// (fresh keys miss, old entries age out of the LRU untouched).
func NewSourceServer(name string, src EstimatorSource, opts Options) *Server {
	opts = opts.withDefaults()
	est, _, release := acquireEstimator(src)
	defer release()
	s := &Server{
		name:    name,
		src:     src,
		g:       est.Grid(),
		mux:     http.NewServeMux(),
		cache:   newBrowseCache(opts.CacheSize, opts.Telemetry, opts.Tenant),
		sem:     opts.sem,
		pool:    opts.pool,
		tenant:  opts.Tenant,
		limiter: opts.Limiter,
		epsilon: opts.OverviewEpsilon,
	}
	if s.sem == nil {
		s.sem = make(chan struct{}, opts.Workers)
		s.pool = newPoolMetrics(opts.Telemetry, opts.Workers)
	}
	var warmLabels []string
	if opts.Tenant != "" {
		warmLabels = []string{"tenant", opts.Tenant}
	}
	s.warms = opts.Telemetry.Counter("geobrowse_drill_warm_total",
		"Browse-cache entries pre-populated by drill-down requests.", warmLabels...)
	s.approx = opts.Telemetry.Counter("geobrowse_approx_maps_total",
		"Browse maps served from the ε-approximate reduced tier.", warmLabels...)
	m := newHTTPMetrics(opts.Telemetry, opts.accessLogger(), opts.Tenant)
	s.mux.HandleFunc("GET /api/info", m.wrap("/api/info", s.handleInfo))
	s.mux.HandleFunc("GET /api/query", m.wrap("/api/query", s.admit(s.handleQuery)))
	s.mux.HandleFunc("GET /api/browse", m.wrap("/api/browse", s.admit(s.handleBrowse)))
	s.mux.HandleFunc("GET /api/drill", m.wrap("/api/drill", s.admit(s.handleDrill)))
	s.mux.HandleFunc("GET /healthz", m.wrap("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /{$}", m.wrap("/", s.handleIndex))
	s.mux.Handle("GET /metrics", opts.Telemetry.Handler())
	return s
}

// admit applies the server's admission limiter to one browse-path
// handler: the request runs with a slot held, or is shed with 429 and a
// Retry-After hint. A nil limiter admits everything.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, err := s.limiter.Acquire(r.Context(), s.tenant)
		if err != nil {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		defer release()
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// CacheStats reports browse-cache hits (served from memory or a shared
// in-flight computation) and misses (computed).
func (s *Server) CacheStats() (hits, misses int64) { return s.cache.Stats() }

// Estimator returns the server's current estimator snapshot: the fixed
// estimator for summaries, the latest published generation for live
// stores. Differential checks use it to compare server incarnations
// without going through HTTP.
func (s *Server) Estimator() core.Estimator {
	est, _ := s.src.CurrentEstimator()
	return est
}

// Info is the /api/info response.
type Info struct {
	Dataset        string     `json:"dataset"`
	Algorithm      string     `json:"algorithm"`
	Objects        int64      `json:"objects"`
	StorageBuckets int        `json:"storageBuckets"`
	Extent         [4]float64 `json:"extent"` // x1,y1,x2,y2
	GridNX         int        `json:"gridNX"`
	GridNY         int        `json:"gridNY"`
	Generation     uint64     `json:"generation"` // 0 for fixed summaries
}

// TileEstimate is one tile of a /api/browse response.
type TileEstimate struct {
	Rect      [4]float64 `json:"rect"`
	Disjoint  int64      `json:"disjoint"`
	Contains  int64      `json:"contains"`
	Contained int64      `json:"contained"`
	Overlap   int64      `json:"overlap"`
}

// BrowseResponse is the /api/browse response.
type BrowseResponse struct {
	Cols  int            `json:"cols"`
	Rows  int            `json:"rows"`
	Tiles []TileEstimate `json:"tiles"` // row-major from the south-west
	// ApproxErrorBound, present only when the map was served from the
	// ε-approximate reduced tier, is the largest certified per-tile
	// additive error (in objects). Absent means every tile is exact.
	ApproxErrorBound *float64 `json:"approxErrorBound,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	est, gen, release := acquireEstimator(s.src)
	defer release()
	ext := s.g.Extent()
	writeJSON(w, Info{
		Dataset:        s.name,
		Algorithm:      est.Name(),
		Objects:        est.Count(),
		StorageBuckets: est.StorageBuckets(),
		Extent:         [4]float64{ext.XMin, ext.YMin, ext.XMax, ext.YMax},
		GridNX:         s.g.NX(),
		GridNY:         s.g.NY(),
		Generation:     gen,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	span, err := s.parseRegion(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	est, _, release := acquireEstimator(s.src)
	defer release()
	writeJSON(w, tileFor(est, span))
}

func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	span, cols, rows, err := parseBrowse(s.g, r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Resolve the snapshot once: key and computation use the same
	// generation, so a swap mid-request cannot cache a mixed result. The
	// pin spans the cache fill, since the computation reads the
	// generation's histogram buffers.
	est, gen, release := acquireEstimator(s.src)
	defer release()
	data, err := s.browseBytes(est, gen, span, cols, rows)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSONBytes(w, data)
}

// browseBytes computes (or serves from cache) the marshaled browse
// response for one tiling against a pinned estimator — the shared body of
// handleBrowse and the drill-triggered cache warmer.
func (s *Server) browseBytes(est core.Estimator, gen uint64, span grid.Span, cols, rows int) ([]byte, error) {
	// ε-opted servers key their entries on a distinct facet: whether a
	// map is served approximately depends on the data (certification),
	// so its bytes must never collide with an exact-only server's.
	facet := ""
	z, _ := est.(*core.Zoom)
	tryApprox := s.epsilon > 0 && z != nil
	if tryApprox {
		facet = fmt.Sprintf("~%g", s.epsilon)
	}
	key := browseKey(gen, resolvedLevel(est, span, cols, rows), span, cols, rows, facet)
	return s.cache.Do(key, func() ([]byte, error) {
		if tryApprox {
			if ests, bound, ok := z.EstimateGridApprox(span, cols, rows, s.epsilon); ok {
				s.approx.Inc()
				resp := BrowseResponse{
					Cols: cols, Rows: rows,
					Tiles:            TileEstimates(s.g, span, cols, rows, ests),
					ApproxErrorBound: &bound,
				}
				return json.Marshal(resp)
			}
		}
		ests, err := s.estimateTiles(est, span, cols, rows)
		if err != nil {
			return nil, err
		}
		resp := BrowseResponse{Cols: cols, Rows: rows, Tiles: TileEstimates(s.g, span, cols, rows, ests)}
		return json.Marshal(resp)
	})
}

// estimateTiles answers a tile map with the batch path, fanning tile rows
// of large maps across the server's bounded worker pool.
func (s *Server) estimateTiles(est core.Estimator, region grid.Span, cols, rows int) ([]core.Estimate, error) {
	return rowParallel(s.sem, s.pool, region, cols, rows, func(sub grid.Span, subRows int) ([]core.Estimate, error) {
		return core.EstimateGrid(est, sub, cols, subRows)
	})
}

// rowParallel runs a tile-map estimation, splitting large maps into
// contiguous bands of tile rows fanned across the bounded pool sem (shared
// by all in-flight requests). Every band keeps its row-major order and
// lands in its slice of the result, so the output is identical to a single
// sweep. estimate answers one band: a sub-region spanning subRows tile
// rows at the map's column count. pm observes slot occupancy while bands
// hold the pool.
func rowParallel(sem chan struct{}, pm *poolMetrics, region grid.Span, cols, rows int,
	estimate func(sub grid.Span, subRows int) ([]core.Estimate, error)) ([]core.Estimate, error) {
	_, th, err := query.Tiling(region, cols, rows)
	if err != nil {
		return nil, err
	}
	workers := min(cap(sem), rows)
	if workers <= 1 || cols*rows < browseParallelMinTiles {
		return estimate(region, rows)
	}
	out := make([]core.Estimate, cols*rows)
	band := (rows + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r0 := w * band
		r1 := min(r0+band-1, rows-1)
		if r0 > r1 {
			break
		}
		wg.Add(1)
		go func(w, r0, r1 int) {
			defer wg.Done()
			sem <- struct{}{} // acquire a pool slot
			defer func() { <-sem }()
			pm.bands.Inc()
			pm.active.Inc()
			defer pm.active.Dec()
			part, err := estimate(query.RowBand(region, th, r0, r1), r1-r0+1)
			if err != nil {
				errs[w] = err
				return
			}
			copy(out[r0*cols:], part)
		}(w, r0, r1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TileEstimates pairs clamped estimates with their tile rectangles in
// row-major order — the browse response body. Exported so a scatter-gather
// coordinator can render merged raw estimates into the identical wire form
// a single server produces.
func TileEstimates(g *grid.Grid, region grid.Span, cols, rows int, ests []core.Estimate) []TileEstimate {
	tw := region.Width() / cols
	th := region.Height() / rows
	tiles := make([]TileEstimate, len(ests))
	for k, est := range ests {
		col, row := k%cols, k/cols
		i1 := region.I1 + col*tw
		j1 := region.J1 + row*th
		tiles[k] = NewTileEstimate(g, grid.Span{I1: i1, J1: j1, I2: i1 + tw - 1, J2: j1 + th - 1}, est)
	}
	return tiles
}

// NewTileEstimate renders one raw estimate for a span into the clamped
// wire form of a browse tile.
func NewTileEstimate(g *grid.Grid, span grid.Span, e core.Estimate) TileEstimate {
	rect := g.SpanRect(span)
	c := e.Clamped()
	return TileEstimate{
		Rect:      [4]float64{rect.XMin, rect.YMin, rect.XMax, rect.YMax},
		Disjoint:  c.Disjoint,
		Contains:  c.Contains,
		Contained: c.Contained,
		Overlap:   c.Overlap,
	}
}

// resolvedLevel returns the pyramid level a zoom-routing estimator would
// serve this tile map from, and 0 for plain estimators. The browse cache
// key must carry it: two requests over the same base-grid region and
// tiling can still resolve different levels once a snapshot swap changes
// the stack depth, and — more fundamentally — the level is part of what
// was computed, so keying on the request alone would be lying to the
// cache if routing rules ever coarsen differently per request.
func resolvedLevel(est core.Estimator, span grid.Span, cols, rows int) int {
	if z, ok := est.(*core.Zoom); ok {
		level, _ := z.RouteGrid(span, cols, rows)
		return level
	}
	return 0
}

// browseKey identifies one browse computation. gen is the snapshot
// generation the response was computed against (0 for fixed summaries), so
// publishing a new generation invalidates exactly the stale entries:
// fresh requests form new keys and miss, while entries for other
// generations are left to age out of the LRU rather than being flushed.
// level is the resolved pyramid level the map is served from (0 when no
// pyramid is in play). facets distinguishes faceted (archive) requests
// over the same region.
func browseKey(gen uint64, level int, span grid.Span, cols, rows int, facets string) string {
	return fmt.Sprintf("g%d:l%d:%d,%d,%d,%d/%dx%d;%s", gen, level, span.I1, span.J1, span.I2, span.J2, cols, rows, facets)
}

// parseBrowse reads the region and tiling of a browse request, bounding
// cols and rows individually before multiplying so the product check
// cannot be bypassed by overflow.
func parseBrowse(g *grid.Grid, r *http.Request) (span grid.Span, cols, rows int, err error) {
	span, err = parseRegion(g, r)
	if err != nil {
		return grid.Span{}, 0, 0, err
	}
	cols, err = posIntParam(r, "cols", maxTiles)
	if err != nil {
		return grid.Span{}, 0, 0, err
	}
	rows, err = posIntParam(r, "rows", maxTiles)
	if err != nil {
		return grid.Span{}, 0, 0, err
	}
	if int64(cols)*int64(rows) > maxTiles {
		return grid.Span{}, 0, 0, fmt.Errorf("tiling %dx%d exceeds the %d-tile limit", cols, rows, maxTiles)
	}
	return span, cols, rows, nil
}

func tileFor(est core.Estimator, span grid.Span) TileEstimate {
	return NewTileEstimate(est.Grid(), span, est.Estimate(span))
}

// ParseBrowseRequest reads the region and tiling parameters of a browse
// request against g — exported for front-ends (the shard coordinator) that
// must accept exactly the requests a Server accepts.
func ParseBrowseRequest(g *grid.Grid, r *http.Request) (span grid.Span, cols, rows int, err error) {
	return parseBrowse(g, r)
}

// ParseRegionRequest reads the x1..y2 region parameters of a request
// against g.
func ParseRegionRequest(g *grid.Grid, r *http.Request) (grid.Span, error) {
	return parseRegion(g, r)
}

// ParseRelation converts a relation query parameter to its geom.Rel2.
func ParseRelation(arg string) (geom.Rel2, error) { return parseRelation(arg) }

// WriteJSON marshals v and writes it with the JSON content type — the
// Server's own response writer, exported for coordinator front-ends.
func WriteJSON(w http.ResponseWriter, v any) { writeJSON(w, v) }

// parseRegion reads x1..y2 and converts them to a grid-aligned span.
func (s *Server) parseRegion(r *http.Request) (grid.Span, error) {
	return parseRegion(s.g, r)
}

func parseRegion(g *grid.Grid, r *http.Request) (grid.Span, error) {
	var vals [4]float64
	for i, name := range []string{"x1", "y1", "x2", "y2"} {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			return grid.Span{}, fmt.Errorf("missing parameter %q", name)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return grid.Span{}, fmt.Errorf("parameter %q: %v", name, err)
		}
		vals[i] = v
	}
	rect := geom.NewRect(vals[0], vals[1], vals[2], vals[3])
	span, err := g.AlignedSpan(rect, 1e-9)
	if err != nil {
		return grid.Span{}, fmt.Errorf("region %v: %v", rect, err)
	}
	return span, nil
}

// posIntParam parses a positive integer parameter bounded by max.
func posIntParam(r *http.Request, name string, max int) (int, error) {
	raw := r.URL.Query().Get(name)
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("parameter %q must be a positive integer, got %q", name, raw)
	}
	if v > max {
		return 0, fmt.Errorf("parameter %q must be at most %d, got %d", name, max, v)
	}
	return v, nil
}

// writeJSON marshals v and writes it with the JSON content type. Encoding
// failures are a server bug: they are logged, counted (via the middleware's
// metricsWriter), and turned into a 500 before any of the response is
// committed.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		logf("geobrowse: encoding %T: %v", v, err)
		if mw, ok := w.(interface{ countEncodeError() }); ok {
			mw.countEncodeError()
		}
		http.Error(w, "internal error", http.StatusInternalServerError)
		return
	}
	writeJSONBytes(w, data)
}

// writeJSONBytes writes pre-marshaled JSON, setting the content type
// before the status code is committed. Write errors mean the client went
// away; they are logged, and because every handler runs behind the
// telemetry middleware, the bytes written and the error also land in the
// geobrowse_http_response_bytes_total and geobrowse_http_write_errors_total
// counters through the metricsWriter this writes to.
func writeJSONBytes(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		logf("geobrowse: writing response: %v", err)
	}
}

// unboundedParam is the bound for parameters that are semantically
// unlimited counts (e.g. drill hot thresholds).
const unboundedParam = math.MaxInt
