// Package geobrowse implements a small HTTP version of the GeoBrowsing
// service of §1: clients select a region of a spatial dataset, grid it
// into tiles, and receive per-tile Level 2 relation counts estimated from
// the dataset's Euler histograms — the "hundreds of trial queries with a
// single click" interaction, without touching the actual objects.
//
// Endpoints:
//
//	GET /            minimal built-in heat-map client
//	GET /api/info    dataset and summary metadata
//	GET /api/query   one estimate: x1,y1,x2,y2
//	GET /api/browse  tiled estimates: x1,y1,x2,y2,cols,rows
//	GET /api/drill   adaptive refinement: x1,y1,x2,y2,relation,hot,depth
//
// All coordinates must align with the summary's grid resolution, matching
// the paper's queries-at-resolution model; misaligned requests get 400s.
package geobrowse

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"spatialhist/internal/core"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/query"
)

// Server answers browsing queries over one summarized dataset.
type Server struct {
	name string
	est  core.Estimator
	mux  *http.ServeMux
}

// NewServer creates a Server for a named dataset summarized by est.
func NewServer(name string, est core.Estimator) *Server {
	s := &Server{name: name, est: est, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/info", s.handleInfo)
	s.mux.HandleFunc("GET /api/query", s.handleQuery)
	s.mux.HandleFunc("GET /api/browse", s.handleBrowse)
	s.mux.HandleFunc("GET /api/drill", s.handleDrill)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Info is the /api/info response.
type Info struct {
	Dataset        string     `json:"dataset"`
	Algorithm      string     `json:"algorithm"`
	Objects        int64      `json:"objects"`
	StorageBuckets int        `json:"storageBuckets"`
	Extent         [4]float64 `json:"extent"` // x1,y1,x2,y2
	GridNX         int        `json:"gridNX"`
	GridNY         int        `json:"gridNY"`
}

// TileEstimate is one tile of a /api/browse response.
type TileEstimate struct {
	Rect      [4]float64 `json:"rect"`
	Disjoint  int64      `json:"disjoint"`
	Contains  int64      `json:"contains"`
	Contained int64      `json:"contained"`
	Overlap   int64      `json:"overlap"`
}

// BrowseResponse is the /api/browse response.
type BrowseResponse struct {
	Cols  int            `json:"cols"`
	Rows  int            `json:"rows"`
	Tiles []TileEstimate `json:"tiles"` // row-major from the south-west
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	g := s.est.Grid()
	ext := g.Extent()
	writeJSON(w, Info{
		Dataset:        s.name,
		Algorithm:      s.est.Name(),
		Objects:        s.est.Count(),
		StorageBuckets: s.est.StorageBuckets(),
		Extent:         [4]float64{ext.XMin, ext.YMin, ext.XMax, ext.YMax},
		GridNX:         g.NX(),
		GridNY:         g.NY(),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	span, err := s.parseRegion(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, s.tile(span))
}

func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	span, err := s.parseRegion(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols, err := posIntParam(r, "cols")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rows, err := posIntParam(r, "rows")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	const maxTiles = 100_000
	if cols*rows > maxTiles {
		http.Error(w, fmt.Sprintf("tiling %dx%d exceeds the %d-tile limit", cols, rows, maxTiles),
			http.StatusBadRequest)
		return
	}
	qs, err := query.Browsing(span, cols, rows)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := BrowseResponse{Cols: cols, Rows: rows, Tiles: make([]TileEstimate, 0, len(qs.Tiles))}
	for _, t := range qs.Tiles {
		resp.Tiles = append(resp.Tiles, s.tile(t))
	}
	writeJSON(w, resp)
}

func (s *Server) tile(span grid.Span) TileEstimate {
	g := s.est.Grid()
	rect := g.SpanRect(span)
	est := s.est.Estimate(span).Clamped()
	return TileEstimate{
		Rect:      [4]float64{rect.XMin, rect.YMin, rect.XMax, rect.YMax},
		Disjoint:  est.Disjoint,
		Contains:  est.Contains,
		Contained: est.Contained,
		Overlap:   est.Overlap,
	}
}

// parseRegion reads x1..y2 and converts them to a grid-aligned span.
func (s *Server) parseRegion(r *http.Request) (grid.Span, error) {
	return parseRegion(s.est.Grid(), r)
}

func parseRegion(g *grid.Grid, r *http.Request) (grid.Span, error) {
	var vals [4]float64
	for i, name := range []string{"x1", "y1", "x2", "y2"} {
		raw := r.URL.Query().Get(name)
		if raw == "" {
			return grid.Span{}, fmt.Errorf("missing parameter %q", name)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return grid.Span{}, fmt.Errorf("parameter %q: %v", name, err)
		}
		vals[i] = v
	}
	rect := geom.NewRect(vals[0], vals[1], vals[2], vals[3])
	span, err := g.AlignedSpan(rect, 1e-9)
	if err != nil {
		return grid.Span{}, fmt.Errorf("region %v: %v", rect, err)
	}
	return span, nil
}

func posIntParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	v, err := strconv.Atoi(raw)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("parameter %q must be a positive integer, got %q", name, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	// The response is assembled in memory; an encode failure here means the
	// client went away, which the server cannot act on.
	_ = enc.Encode(v)
}
