package geobrowse

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"spatialhist/internal/core"
	"spatialhist/internal/euler"
	"spatialhist/internal/exact"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/telemetry"
)

// joinTestFront builds a MultiServer over span-backed tenants and returns
// the exact-side spans per tenant.
func joinTestFront(t *testing.T, reg *telemetry.Registry) (*MultiServer, *grid.Grid, map[string][]grid.Span) {
	t.Helper()
	g := grid.NewUnit(24, 18)
	r := rand.New(rand.NewSource(77))
	spans := map[string][]grid.Span{}
	var cfgs []TenantConfig
	for _, name := range []string{"roads", "parcels"} {
		var ss []grid.Span
		for k := 0; k < 30; k++ {
			i1, j1 := r.Intn(g.NX()), r.Intn(g.NY())
			ss = append(ss, grid.Span{I1: i1, J1: j1, I2: i1 + r.Intn(g.NX()-i1), J2: j1 + r.Intn(g.NY()-j1)})
		}
		spans[name] = ss
		rects := make([]geom.Rect, len(ss))
		for i, s := range ss {
			rects[i] = g.SpanRect(s)
		}
		cfgs = append(cfgs, TenantConfig{Name: name, Load: func() (core.Estimator, error) {
			return core.NewSEuler(euler.FromRects(g, rects)), nil
		}})
	}
	// A tenant on an incompatible extent, to drive the 422 path.
	cfgs = append(cfgs, TenantConfig{Name: "elsewhere", Load: func() (core.Estimator, error) {
		og := grid.New(geom.NewRect(0, 0, 7, 7), 24, 18)
		return core.NewSEuler(euler.FromRects(og, []geom.Rect{geom.NewRect(1, 1, 3, 3)})), nil
	}})
	registry, err := NewRegistry(cfgs, RegistryOptions{Server: Options{Telemetry: reg}})
	if err != nil {
		t.Fatal(err)
	}
	return NewMultiServer(registry), g, spans
}

func postJoin(t *testing.T, h http.Handler, body any) (*httptest.ResponseRecorder, JoinResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/join", bytes.NewReader(raw)))
	var resp JoinResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decoding join response %q: %v", rec.Body.Bytes(), err)
		}
	}
	return rec, resp
}

func TestJoinEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	ms, g, spans := joinTestFront(t, reg)

	rec, resp := postJoin(t, ms, JoinRequest{A: "roads", B: "parcels"})
	if rec.Code != http.StatusOK {
		t.Fatalf("join: %d: %s", rec.Code, rec.Body.Bytes())
	}
	want := exact.JoinSpans(g, spans["roads"], spans["parcels"])
	if resp.Pairs != want {
		t.Fatalf("Pairs = %d, want exact %d", resp.Pairs, want)
	}
	if resp.CountA != 30 || resp.CountB != 30 || resp.A != "roads" || resp.B != "parcels" {
		t.Fatalf("response = %+v", resp)
	}
	if wantSel := float64(want) / 900.0; resp.Selectivity != wantSel {
		t.Fatalf("Selectivity = %g, want %g", resp.Selectivity, wantSel)
	}
	if resp.Resampled || resp.Certified {
		t.Fatalf("flags = %+v", resp)
	}

	// The estimate is cached by both tenants' generations: a repeat hits.
	_, before := ms.join.cache.Stats()
	rec2, resp2 := postJoin(t, ms, JoinRequest{A: "roads", B: "parcels"})
	if rec2.Code != http.StatusOK || resp2 != resp {
		t.Fatalf("repeat join diverged: %d, %+v vs %+v", rec2.Code, resp2, resp)
	}
	hits, after := ms.join.cache.Stats()
	if hits != 1 || after != before {
		t.Fatalf("cache stats after repeat = (%d hits, %d misses), want (1, %d)", hits, after, before)
	}
	// The swapped direction is a different key but a symmetric count.
	_, respBA := postJoin(t, ms, JoinRequest{A: "parcels", B: "roads"})
	if respBA.Pairs != resp.Pairs {
		t.Fatalf("join not symmetric: %d vs %d", respBA.Pairs, resp.Pairs)
	}

	if v := reg.CounterValues("core_join_requests_total"); v[""] != 3 {
		t.Fatalf("core_join_requests_total = %v, want 3", v)
	}
	if v := reg.CounterValues("core_join_errors_total"); v[""] != 0 {
		t.Fatalf("core_join_errors_total = %v, want 0", v)
	}
}

func TestJoinEndpointErrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	ms, _, _ := joinTestFront(t, reg)

	if rec, _ := postJoin(t, ms, JoinRequest{A: "roads", B: "nope"}); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d, want 404", rec.Code)
	}
	if rec, _ := postJoin(t, ms, JoinRequest{A: "roads"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing side: %d, want 400", rec.Code)
	}
	rec := httptest.NewRecorder()
	ms.ServeHTTP(rec, httptest.NewRequest("POST", "/api/join", bytes.NewReader([]byte("{not json"))))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", rec.Code)
	}
	if rec, _ := postJoin(t, ms, JoinRequest{A: "roads", B: "elsewhere"}); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("incompatible grids: %d, want 422", rec.Code)
	}
	if v := reg.CounterValues("core_join_errors_total"); v[""] != 4 {
		t.Fatalf("core_join_errors_total = %v, want 4", v)
	}
	// Tenant routing still works next to the literal /api/join route.
	rr := httptest.NewRecorder()
	ms.ServeHTTP(rr, httptest.NewRequest("GET", "/api/roads/info", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("tenant route broken: %d: %s", rr.Code, rr.Body.Bytes())
	}
}
