package geobrowse

import (
	"container/list"
	"sync"
	"sync/atomic"

	"spatialhist/internal/telemetry"
)

// browseCache is a small LRU of marshaled browse responses with
// single-flight deduplication: identical concurrent requests — the common
// case when many clients watch the same region — are computed once, and
// repeats of a recent request are served from memory without touching the
// histograms or re-encoding JSON.
//
// Values are the final response bytes, so a hit is a map lookup plus one
// Write. The cache is bounded by entry count, not bytes: a browse response
// is at most ~maxTiles tiles, so capacity×maxTiles bounds the footprint.
type browseCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight

	hits, misses atomic.Int64

	// Telemetry counters, created once at construction so the hot path
	// pays one atomic add, not a registry lookup. mHits counts stored-
	// response hits only; single-flight followers are mDedup (Stats keeps
	// its historical hits-include-dedup semantics for callers).
	mHits, mMisses, mDedup, mEvictions *telemetry.Counter
	mEntries                           *telemetry.Gauge
}

type cacheEntry struct {
	key string
	val []byte
}

// flight is one in-progress computation; followers wait on done and read
// val/err afterwards.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// newBrowseCache returns a cache holding up to capacity responses;
// capacity <= 0 disables storage but keeps single-flight deduplication.
// Cache events are recorded into reg (nil means telemetry.Default());
// tenant, when non-empty, labels the counters so a registry front's
// per-tenant cache partitions stay distinguishable.
func newBrowseCache(capacity int, reg *telemetry.Registry, tenant string) *browseCache {
	if reg == nil {
		reg = telemetry.Default()
	}
	var labels []string
	if tenant != "" {
		labels = []string{"tenant", tenant}
	}
	return &browseCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight),
		mHits: reg.Counter("geobrowse_cache_hits_total",
			"Browse requests served from a stored response.", labels...),
		mMisses: reg.Counter("geobrowse_cache_misses_total",
			"Browse requests that computed their response.", labels...),
		mDedup: reg.Counter("geobrowse_cache_dedup_total",
			"Browse requests that waited on an identical in-flight computation.", labels...),
		mEvictions: reg.Counter("geobrowse_cache_evictions_total",
			"Stored responses evicted by the LRU bound.", labels...),
		mEntries: reg.Gauge("geobrowse_cache_entries",
			"Stored responses currently in the cache.", labels...),
	}
}

// Do returns the cached response for key, or computes it with compute,
// deduplicating concurrent calls for the same key: one caller runs
// compute, the rest wait for its result. Errors are returned to every
// waiter and never cached.
func (c *browseCache) Do(key string, compute func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		c.hits.Add(1)
		c.mHits.Inc()
		return val, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		c.mDedup.Inc()
		// A deduplicated follower is neither a recomputation nor a store
		// hit; count it as a hit since the work was shared.
		if f.err == nil {
			c.hits.Add(1)
		}
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	c.misses.Add(1)
	c.mMisses.Inc()
	f.val, f.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && c.capacity > 0 {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, val: f.val})
		for c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.mEvictions.Inc()
		}
		c.mEntries.Set(int64(c.ll.Len()))
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// Stats returns how many Do calls were served from cache (or a shared
// in-flight computation) versus computed.
func (c *browseCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of stored responses.
func (c *browseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
