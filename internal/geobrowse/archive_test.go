package geobrowse

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"spatialhist/internal/archive"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
)

func testArchiveServer(t *testing.T) *httptest.Server {
	t.Helper()
	b, err := archive.NewBuilder(archive.Schema{
		Grid:      grid.NewUnit(36, 18),
		Subjects:  []string{"map", "photo"},
		DateLo:    1900,
		DateHi:    2000,
		DateBands: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := []archive.Record{
		{MBR: geom.NewRect(2, 2, 4, 4), Date: 1905, Subject: 0},
		{MBR: geom.NewRect(3, 3, 5, 5), Date: 1955, Subject: 0},
		{MBR: geom.NewRect(20, 10, 21, 11), Date: 1955, Subject: 1},
		{MBR: geom.NewRect(20, 10, 22, 12), Date: 1995, Subject: 1},
	}
	for _, rec := range recs {
		if !b.Add(rec) {
			t.Fatalf("record rejected: %+v", rec)
		}
	}
	srv := httptest.NewServer(NewArchiveServer("testarchive", b.Build()))
	t.Cleanup(srv.Close)
	return srv
}

func TestArchiveInfo(t *testing.T) {
	srv := testArchiveServer(t)
	var info ArchiveInfo
	getJSON(t, srv.URL+"/api/info", &info)
	if info.Archive != "testarchive" || info.Records != 4 ||
		len(info.Subjects) != 2 || info.DateBands != 10 {
		t.Fatalf("info = %+v", info)
	}
}

func TestArchiveFacetedBrowse(t *testing.T) {
	srv := testArchiveServer(t)
	base := srv.URL + "/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2&rows=1"

	var resp FacetedBrowseResponse
	getJSON(t, base, &resp)
	if resp.Matching != 4 || len(resp.Tiles) != 2 {
		t.Fatalf("unfiltered browse = %+v", resp)
	}
	// West tile holds the two maps; east tile the two photos.
	if resp.Tiles[0].Contains != 2 || resp.Tiles[1].Contains != 2 {
		t.Fatalf("tiles = %+v", resp.Tiles)
	}

	getJSON(t, base+"&subjects=1", &resp)
	if resp.Matching != 2 || resp.Tiles[0].Contains != 0 || resp.Tiles[1].Contains != 2 {
		t.Fatalf("photos-only browse = %+v", resp)
	}

	getJSON(t, base+"&from=1950&to=1960", &resp)
	if resp.Matching != 2 {
		t.Fatalf("1950s browse matching = %d", resp.Matching)
	}

	getJSON(t, base+"&subjects=0&from=1900&to=1910", &resp)
	if resp.Matching != 1 || resp.Tiles[0].Contains != 1 {
		t.Fatalf("combined facets = %+v", resp)
	}
}

func TestArchiveBadRequests(t *testing.T) {
	srv := testArchiveServer(t)
	cases := []string{
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2",                          // missing rows
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2&rows=1&subjects=x",        // bad subjects
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2&rows=1&subjects=9",        // unknown subject
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2&rows=1&from=1955&to=1965", // misaligned dates
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2&rows=1&from=1950",         // from without to
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=2&rows=1&from=a&to=b",       // non-numeric dates
		"/api/browse?x1=0.5&y1=0&x2=36&y2=18&cols=2&rows=1",                 // misaligned region
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=5&rows=1",                   // non-dividing tiling
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}
