package geobrowse

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialhist/internal/core"
	"spatialhist/internal/euler"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := grid.NewUnit(36, 18)
	h := euler.FromRects(g, []geom.Rect{
		geom.NewRect(2, 2, 4, 4),
		geom.NewRect(10, 5, 30, 15),
		geom.NewRect(2.5, 2.5, 3, 3),
	})
	srv := httptest.NewServer(NewServer("testdata", core.NewEuler(h)))
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

func TestInfo(t *testing.T) {
	srv := testServer(t)
	var info Info
	getJSON(t, srv.URL+"/api/info", &info)
	if info.Dataset != "testdata" || info.Objects != 3 || info.Algorithm != "EulerApprox" {
		t.Fatalf("info = %+v", info)
	}
	if info.GridNX != 36 || info.GridNY != 18 || info.Extent != [4]float64{0, 0, 36, 18} {
		t.Fatalf("grid info = %+v", info)
	}
}

func TestQuery(t *testing.T) {
	srv := testServer(t)
	var tile TileEstimate
	getJSON(t, srv.URL+"/api/query?x1=0&y1=0&x2=6&y2=6", &tile)
	if tile.Contains != 2 || tile.Disjoint != 1 {
		t.Fatalf("tile = %+v", tile)
	}
	if tile.Rect != [4]float64{0, 0, 6, 6} {
		t.Fatalf("rect = %v", tile.Rect)
	}
}

func TestBrowse(t *testing.T) {
	srv := testServer(t)
	var resp BrowseResponse
	getJSON(t, srv.URL+"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=6&rows=3", &resp)
	if resp.Cols != 6 || resp.Rows != 3 || len(resp.Tiles) != 18 {
		t.Fatalf("browse = %d x %d, %d tiles", resp.Cols, resp.Rows, len(resp.Tiles))
	}
	// The SW tile holds the two small objects.
	if resp.Tiles[0].Contains != 2 {
		t.Fatalf("SW tile = %+v", resp.Tiles[0])
	}
	// Totals per tile are consistent (clamped estimates can lose a little,
	// but never exceed the object count).
	for i, tile := range resp.Tiles {
		sum := tile.Disjoint + tile.Contains + tile.Contained + tile.Overlap
		if sum < 0 || sum > 4 {
			t.Fatalf("tile %d sums to %d: %+v", i, sum, tile)
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	cases := []string{
		"/api/query",                                          // missing params
		"/api/query?x1=a&y1=0&x2=6&y2=6",                      // non-numeric
		"/api/query?x1=0.5&y1=0&x2=6&y2=6",                    // misaligned
		"/api/query?x1=0&y1=0&x2=600&y2=6",                    // out of space
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=0&rows=3",     // bad cols
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=5&rows=3",     // non-dividing
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=999&rows=999", // tile limit
		"/api/browse?x1=0&y1=0&x2=36&y2=18&cols=6",            // missing rows
	}
	for _, path := range cases {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestIndexPage(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "GeoBrowse") {
		t.Fatalf("index page broken: %d", resp.StatusCode)
	}
	// Unknown paths 404.
	r2, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %d, want 404", r2.StatusCode)
	}
}

func TestDrill(t *testing.T) {
	srv := testServer(t)
	var resp DrillResponse
	getJSON(t, srv.URL+"/api/drill?x1=0&y1=0&x2=36&y2=18&relation=contains&hot=1&depth=3", &resp)
	if resp.Relation != "contains" || len(resp.Tiles) < 4 {
		t.Fatalf("drill = %+v", resp)
	}
	refined := false
	for _, tile := range resp.Tiles {
		if tile.Depth > 0 {
			refined = true
		}
		if tile.Depth > 3 {
			t.Fatalf("tile beyond depth limit: %+v", tile)
		}
	}
	if !refined {
		t.Fatal("expected refinement around the objects")
	}
	for _, path := range []string{
		"/api/drill?x1=0&y1=0&x2=36&y2=18&relation=bogus&hot=1&depth=3",
		"/api/drill?x1=0&y1=0&x2=36&y2=18&relation=contains&hot=0&depth=3",
		"/api/drill?x1=0&y1=0&x2=36&y2=18&relation=contains&hot=1&depth=99",
		"/api/drill?x1=0&y1=0&x2=37&y2=18&relation=contains&hot=1&depth=3",
	} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, r2.StatusCode)
		}
	}
}

// approxTestServer serves a pyramid-backed S-EulerApprox zoom stack with
// the reduced overview tier attached, at the given ε.
func approxTestServer(t *testing.T, eps float64) *httptest.Server {
	t.Helper()
	g := grid.NewUnit(128, 128)
	rects := make([]geom.Rect, 0, 400)
	r := rand.New(rand.NewSource(31))
	for k := 0; k < 400; k++ {
		x1, y1 := r.Float64()*120, r.Float64()*120
		rects = append(rects, geom.NewRect(x1, y1, x1+r.Float64()*8, y1+r.Float64()*8))
	}
	h := euler.FromRects(g, rects)
	p := euler.NewPyramid(h, euler.PyramidOpts{MinGrid: 8})
	z := core.ZoomSEuler(p)
	if o, ok := core.OverviewFromPyramids([]*euler.Pyramid{p}, core.OverviewShift(p.Levels())); ok {
		z.AttachOverview(o)
	} else {
		t.Fatal("overview derivation refused")
	}
	srv := httptest.NewServer(NewServerOpts("approx", z, Options{OverviewEpsilon: eps}))
	t.Cleanup(srv.Close)
	return srv
}

// TestBrowseApprox is the ε-opt-in serving contract: an unaligned overview
// map is served from the reduced tier with its certified bound in the
// response, every tile stays within that bound of the exact server's
// answer, and an ε=0 server never reports a bound.
func TestBrowseApprox(t *testing.T) {
	approxSrv := approxTestServer(t, 2)
	exactSrv := approxTestServer(t, 0)
	const q = "/api/browse?x1=1&y1=1&x2=97&y2=97&cols=2&rows=2"
	var approx, exact BrowseResponse
	getJSON(t, approxSrv.URL+q, &approx)
	getJSON(t, exactSrv.URL+q, &exact)
	if exact.ApproxErrorBound != nil {
		t.Fatal("exact server reported an error bound")
	}
	if approx.ApproxErrorBound == nil {
		t.Fatal("ε-opted server did not serve the overview map approximately")
	}
	bound := *approx.ApproxErrorBound
	if bound < 0 || bound > 2*48*48 {
		t.Fatalf("certified bound %g outside [0, ε·|tile|]", bound)
	}
	lim := int64(bound)
	for k := range exact.Tiles {
		a, e := approx.Tiles[k], exact.Tiles[k]
		if a.Rect != e.Rect || a.Contained != 0 || e.Contained != 0 {
			t.Fatalf("tile %d geometry or form diverges: %+v vs %+v", k, a, e)
		}
		if abs64(a.Disjoint-e.Disjoint) > lim || abs64(a.Contains-e.Contains) > lim ||
			abs64(a.Overlap-e.Overlap) > 2*lim {
			t.Fatalf("tile %d drifts past the certified bound %g: %+v vs %+v", k, bound, a, e)
		}
	}

	// A map the zoom route answers at the reduced level or coarser must
	// be exact even on the ε-opted server.
	var aligned BrowseResponse
	getJSON(t, approxSrv.URL+"/api/browse?x1=0&y1=0&x2=128&y2=128&cols=4&rows=4", &aligned)
	if aligned.ApproxErrorBound != nil {
		t.Fatal("aligned overview map was served approximately")
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
