package query

import (
	"testing"

	"spatialhist/internal/grid"
)

func TestQNPaperCounts(t *testing.T) {
	g := grid.NewUnit(360, 180)
	wantCounts := map[int]int{
		20: 18 * 9, 10: 36 * 18, 2: 180 * 90,
	}
	for n, want := range wantCounts {
		s, err := QN(g, n)
		if err != nil {
			t.Fatalf("QN(%d): %v", n, err)
		}
		if s.Len() != want {
			t.Errorf("Q%d has %d tiles, want %d", n, s.Len(), want)
		}
		if s.TileW != n || s.TileH != n {
			t.Errorf("Q%d tile size %dx%d", n, s.TileW, s.TileH)
		}
	}
	// Q10 is the paper's example: 648 queries.
	s, _ := QN(g, 10)
	if s.Len() != 648 {
		t.Errorf("Q10 = %d queries, want 648", s.Len())
	}
}

func TestQNTilesPartitionSpace(t *testing.T) {
	g := grid.NewUnit(60, 30)
	s, err := QN(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[[2]int]int)
	for _, tile := range s.Tiles {
		if !tile.Valid() || tile.I1 < 0 || tile.J1 < 0 || tile.I2 >= 60 || tile.J2 >= 30 {
			t.Fatalf("tile %v outside grid", tile)
		}
		if tile.Width() != 5 || tile.Height() != 5 {
			t.Fatalf("tile %v has wrong size", tile)
		}
		for i := tile.I1; i <= tile.I2; i++ {
			for j := tile.J1; j <= tile.J2; j++ {
				covered[[2]int{i, j}]++
			}
		}
	}
	if len(covered) != 60*30 {
		t.Fatalf("tiles cover %d cells, want %d", len(covered), 60*30)
	}
	for cell, times := range covered {
		if times != 1 {
			t.Fatalf("cell %v covered %d times", cell, times)
		}
	}
}

func TestQNErrors(t *testing.T) {
	g := grid.NewUnit(360, 180)
	if _, err := QN(g, 7); err == nil {
		t.Error("non-dividing tile size must error")
	}
	if _, err := QN(g, 0); err == nil {
		t.Error("zero tile size must error")
	}
}

func TestBrowsing(t *testing.T) {
	region := grid.Span{I1: 10, J1: 20, I2: 31, J2: 31} // 22x12 cells
	s, err := Browsing(region, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 44 || s.TileW != 2 || s.TileH != 3 {
		t.Fatalf("Browsing = %v", s)
	}
	// Row-major order from the SW corner.
	if s.Tiles[0] != (grid.Span{I1: 10, J1: 20, I2: 11, J2: 22}) {
		t.Errorf("first tile = %v", s.Tiles[0])
	}
	if s.Tiles[1].I1 != 12 {
		t.Errorf("second tile = %v, want next column", s.Tiles[1])
	}
	if s.Tiles[11].J1 != 23 {
		t.Errorf("tile 11 = %v, want second row", s.Tiles[11])
	}

	if _, err := Browsing(region, 5, 4); err == nil {
		t.Error("non-dividing cols must error")
	}
	if _, err := Browsing(region, 0, 4); err == nil {
		t.Error("zero cols must error")
	}
	if _, err := Browsing(grid.Span{I1: 5, I2: 3, J2: 0}, 1, 1); err == nil {
		t.Error("invalid region must error")
	}
}

func TestAllPaperSets(t *testing.T) {
	g := grid.NewUnit(360, 180)
	sets, err := AllPaperSets(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 11 {
		t.Fatalf("got %d sets, want 11", len(sets))
	}
	if sets[0].Name != "Q20" || sets[len(sets)-1].Name != "Q2" {
		t.Errorf("set order wrong: %s .. %s", sets[0].Name, sets[len(sets)-1].Name)
	}
	// Q2 is the largest set: 16,200 queries (§6.5).
	if sets[len(sets)-1].Len() != 16200 {
		t.Errorf("Q2 = %d queries, want 16200", sets[len(sets)-1].Len())
	}
	// A grid not divisible by all paper sizes must fail.
	if _, err := AllPaperSets(grid.NewUnit(100, 100)); err == nil {
		t.Error("AllPaperSets on 100x100 must error (15 does not divide 100)")
	}
}
