// Package query builds the browsing query sets of the paper's evaluation.
//
// A browsing query (§1, §2) selects a region and grids it into tiles; every
// tile is an independent COUNT query about Level 2 spatial relations. The
// evaluation's query sets Q_n (§6.1.2) are browsing queries whose selected
// region is the whole 360×180 space and whose tiles are n×n, giving
// (360/n)×(180/n) queries per set.
package query

import (
	"fmt"

	"spatialhist/internal/grid"
)

// Set is an ordered collection of grid-aligned tile queries produced by a
// single browsing interaction.
type Set struct {
	Name  string
	Tiles []grid.Span
	// Region is the selected region the tiles partition; Cols×Rows is the
	// tiling. Tiles[row*Cols+col] covers the col-th tile column from the
	// west and the row-th tile row from the south.
	Region     grid.Span
	Cols, Rows int
	// TileW and TileH are the tile size in cells; all tiles in a set are
	// equal-sized.
	TileW, TileH int
}

// Len returns the number of tiles (individual queries) in the set.
func (s *Set) Len() int { return len(s.Tiles) }

// String implements fmt.Stringer.
func (s *Set) String() string {
	return fmt.Sprintf("%s: %d tiles of %dx%d cells", s.Name, len(s.Tiles), s.TileW, s.TileH)
}

// PaperNs lists the tile sizes of the paper's eleven query sets, largest
// first as in Figure 14.
func PaperNs() []int { return []int{20, 18, 15, 12, 10, 9, 6, 5, 4, 3, 2} }

// QN builds the paper's Q_n query set over g: n×n-cell tiles tiling the
// whole data space. The grid dimensions must be divisible by n.
func QN(g *grid.Grid, n int) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("query: non-positive tile size %d", n)
	}
	if g.NX()%n != 0 || g.NY()%n != 0 {
		return nil, fmt.Errorf("query: tile size %d does not divide %dx%d grid", n, g.NX(), g.NY())
	}
	region := grid.Span{I1: 0, J1: 0, I2: g.NX() - 1, J2: g.NY() - 1}
	s, err := Browsing(region, g.NX()/n, g.NY()/n)
	if err != nil {
		return nil, err
	}
	s.Name = fmt.Sprintf("Q%d", n)
	return s, nil
}

// Tiling validates a cols×rows equal tiling of region and returns the tile
// size in cells. It is the shared contract between Browsing (which
// materializes the tiles) and the batch estimation path (which never
// does): the region must be a valid span whose width divides by cols and
// height by rows.
func Tiling(region grid.Span, cols, rows int) (tw, th int, err error) {
	if cols <= 0 || rows <= 0 {
		return 0, 0, fmt.Errorf("query: non-positive tiling %dx%d", cols, rows)
	}
	if !region.Valid() {
		return 0, 0, fmt.Errorf("query: invalid region %v", region)
	}
	if region.Width()%cols != 0 || region.Height()%rows != 0 {
		return 0, 0, fmt.Errorf("query: %dx%d tiling does not divide region %v at this resolution",
			cols, rows, region)
	}
	return region.Width() / cols, region.Height() / rows, nil
}

// RowBand returns the sub-region covering tile rows [r0..r1] of a cols×rows
// tiling of region — the unit of work when a tile map is split across
// workers by row. th must be the tile height Tiling reported.
func RowBand(region grid.Span, th, r0, r1 int) grid.Span {
	return grid.Span{
		I1: region.I1,
		J1: region.J1 + r0*th,
		I2: region.I2,
		J2: region.J1 + (r1+1)*th - 1,
	}
}

// Browsing partitions a selected region into cols×rows equal tiles, the
// GeoBrowsing interaction of §1: the user picks a region and the numbers of
// rows and columns. The region's width in cells must be divisible by cols
// and its height by rows so that every tile stays grid-aligned.
//
// Tiles are ordered row-major from the south-west corner: index
// row*cols + col.
func Browsing(region grid.Span, cols, rows int) (*Set, error) {
	tw, th, err := Tiling(region, cols, rows)
	if err != nil {
		return nil, err
	}
	tiles := make([]grid.Span, 0, cols*rows)
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			i1 := region.I1 + col*tw
			j1 := region.J1 + row*th
			tiles = append(tiles, grid.Span{I1: i1, J1: j1, I2: i1 + tw - 1, J2: j1 + th - 1})
		}
	}
	return &Set{
		Name:   fmt.Sprintf("browse %dx%d over %v", cols, rows, region),
		Tiles:  tiles,
		Region: region,
		Cols:   cols,
		Rows:   rows,
		TileW:  tw,
		TileH:  th,
	}, nil
}

// AllPaperSets builds the eleven Q_n sets over g. The grid must be
// divisible by every paper tile size; the paper's 360×180 grid is.
func AllPaperSets(g *grid.Grid) ([]*Set, error) {
	out := make([]*Set, 0, len(PaperNs()))
	for _, n := range PaperNs() {
		s, err := QN(g, n)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
