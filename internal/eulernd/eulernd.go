// Package eulernd generalizes the Euler histogram to d dimensions. The
// paper's Theorem 3.1 and Beigel & Tanin's corollary are stated for
// arbitrary dimensionality; this package realizes the data structure they
// imply: a signed histogram over the (2n_1−1)×…×(2n_d−1) lattice of
// interior faces of a d-dimensional grid, where a lattice element whose
// coordinate is odd in k axes carries sign (−1)^k.
//
// Inserting a (shrunk) hyper-rectangular object occupying cells
// [lo_1..hi_1]×…×[lo_d..hi_d] increments every lattice element in the box
// [2lo_1..2hi_1]×…×[2lo_d..2hi_d]. The alternating sum of the lattice
// elements inside any grid-aligned region then equals the Euler
// characteristic of each object∩region intersection summed over objects —
// +1 per convex intersection — so d-dimensional intersect counts are
// exact. The S-EulerApprox identities carry over, with one genuinely
// dimension-dependent twist in how containing objects appear in the
// outside sum — see Estimate.
//
// The 2-d case agrees bucket-for-bucket with package euler (tested); the
// d=1 case with package interval. Construction uses a d-dimensional
// difference array (2^d corner updates per object) finalized by one prefix
// pass per dimension, and queries use a d-dimensional prefix-sum cube, so
// estimates cost O(2^d) lookups — constant for fixed d.
package eulernd

import (
	"fmt"

	"spatialhist/internal/prefixsum"
)

// Span is an inclusive d-dimensional cell box: Lo[k]..Hi[k] per dimension.
type Span struct {
	Lo, Hi []int
}

// Valid reports whether the span is well-formed for dimensionality d.
func (s Span) Valid(dims []int) bool {
	if len(s.Lo) != len(dims) || len(s.Hi) != len(dims) {
		return false
	}
	for k := range dims {
		if s.Lo[k] < 0 || s.Lo[k] > s.Hi[k] || s.Hi[k] >= dims[k] {
			return false
		}
	}
	return true
}

// Cells returns the number of cells covered.
func (s Span) Cells() int {
	n := 1
	for k := range s.Lo {
		n *= s.Hi[k] - s.Lo[k] + 1
	}
	return n
}

// Contains reports whether o ⊆ s cell-wise.
func (s Span) Contains(o Span) bool {
	for k := range s.Lo {
		if o.Lo[k] < s.Lo[k] || o.Hi[k] > s.Hi[k] {
			return false
		}
	}
	return true
}

// ContainsStrict reports whether the (open) object span o strictly
// contains the (closed) query span s under the shrinking convention.
func (s Span) ContainsStrict(o Span) bool {
	for k := range s.Lo {
		if s.Lo[k] < o.Lo[k]+1 || s.Hi[k] > o.Hi[k]-1 {
			return false
		}
	}
	return true
}

// Intersects reports whether the spans share a cell.
func (s Span) Intersects(o Span) bool {
	for k := range s.Lo {
		if s.Lo[k] > o.Hi[k] || o.Lo[k] > s.Hi[k] {
			return false
		}
	}
	return true
}

// Builder accumulates insertions for a d-dimensional Euler histogram.
type Builder struct {
	dims    []int // cells per dimension
	ldims   []int // lattice sizes 2n−1
	strides []int // strides of the (l+1)-padded difference array
	diff    []int64
	n       int64
}

// NewBuilder creates a builder for a grid with the given cell counts. It
// panics on empty or non-positive dimensions: the grid is configuration.
func NewBuilder(dims []int) *Builder {
	if len(dims) == 0 {
		panic("eulernd: empty dimension list")
	}
	b := &Builder{dims: append([]int(nil), dims...)}
	size := 1
	b.ldims = make([]int, len(dims))
	for k, n := range dims {
		if n <= 0 {
			panic(fmt.Sprintf("eulernd: non-positive dimension %d", n))
		}
		b.ldims[k] = 2*n - 1
		size *= b.ldims[k] + 1
	}
	b.strides = make([]int, len(dims))
	stride := 1
	for k := len(dims) - 1; k >= 0; k-- {
		b.strides[k] = stride
		stride *= b.ldims[k] + 1
	}
	b.diff = make([]int64, size)
	return b
}

// Dims returns the grid's cell counts.
func (b *Builder) Dims() []int { return append([]int(nil), b.dims...) }

// Add inserts one object span. Out-of-range spans panic: snapping is the
// caller's job and a bad span is a bug.
func (b *Builder) Add(s Span) {
	if !s.Valid(b.dims) {
		panic(fmt.Sprintf("eulernd: span %v outside grid %v", s, b.dims))
	}
	// d-dimensional difference update: ±1 at each of the 2^d corners of
	// the half-open lattice box [2lo, 2hi+1).
	d := len(b.dims)
	for mask := 0; mask < 1<<d; mask++ {
		idx := 0
		bits := 0
		for k := 0; k < d; k++ {
			if mask&(1<<k) != 0 {
				idx += (2*s.Hi[k] + 1) * b.strides[k]
				bits++
			} else {
				idx += (2 * s.Lo[k]) * b.strides[k]
			}
		}
		if bits%2 == 0 {
			b.diff[idx]++
		} else {
			b.diff[idx]--
		}
	}
	b.n++
}

// Count returns the number of inserted objects.
func (b *Builder) Count() int64 { return b.n }

// Build finalizes the histogram: prefix passes materialize per-element
// counts, parity signs are applied, and the cumulative cube is computed.
func (b *Builder) Build() *Histogram {
	d := len(b.dims)
	// Prefix along each dimension of the padded array.
	for k := 0; k < d; k++ {
		b.prefixAlong(k)
	}
	// Extract the unpadded lattice with signs applied.
	size := 1
	for _, l := range b.ldims {
		size *= l
	}
	raw := make([]int64, size)
	coord := make([]int, d)
	for i := 0; i < size; i++ {
		idx := 0
		odd := 0
		for k := 0; k < d; k++ {
			idx += coord[k] * b.strides[k]
			if coord[k]&1 == 1 {
				odd++
			}
		}
		v := b.diff[idx]
		if odd%2 == 1 {
			v = -v
		}
		raw[i] = v
		for k := d - 1; k >= 0; k-- {
			coord[k]++
			if coord[k] < b.ldims[k] {
				break
			}
			coord[k] = 0
		}
	}
	h := &Histogram{
		dims:  append([]int(nil), b.dims...),
		ldims: append([]int(nil), b.ldims...),
		cube:  prefixsum.NewCube(raw, b.ldims),
		n:     b.n,
	}
	// The builder's diff array now holds prefixed values and cannot accept
	// further inserts; poison it so misuse fails loudly.
	b.diff = nil
	return h
}

func (b *Builder) prefixAlong(k int) {
	lk := b.ldims[k] + 1
	sk := b.strides[k]
	outer := len(b.diff) / lk
	block := lk * sk
	for o := 0; o < outer; o++ {
		hi := o / sk
		lo := o % sk
		base := hi*block + lo
		for x := 1; x < lk; x++ {
			b.diff[base+x*sk] += b.diff[base+(x-1)*sk]
		}
	}
}

// Histogram is an immutable d-dimensional Euler histogram.
type Histogram struct {
	dims  []int
	ldims []int
	cube  *prefixsum.Cube
	n     int64
}

// Dims returns the grid's cell counts.
func (h *Histogram) Dims() []int { return append([]int(nil), h.dims...) }

// Count returns the number of inserted objects.
func (h *Histogram) Count() int64 { return h.n }

// StorageBuckets returns Π (2n_k − 1), the histogram's storage cost.
func (h *Histogram) StorageBuckets() int { return h.cube.Size() }

// Total returns the sum of all buckets; equals Count by the d-dimensional
// Euler relation.
func (h *Histogram) Total() int64 { return h.cube.Total() }

// InsideSum returns the exact number of objects intersecting the query
// span (each object∩query is a convex box contributing +1).
func (h *Histogram) InsideSum(q Span) int64 {
	d := len(h.dims)
	lo := make([]int, d)
	hi := make([]int, d)
	for k := 0; k < d; k++ {
		lo[k] = 2 * q.Lo[k]
		hi[k] = 2 * q.Hi[k]
	}
	return h.cube.RangeSum(lo, hi)
}

// OutsideSum returns the signed bucket sum strictly outside the closed
// query span — the d-dimensional n'_ei.
func (h *Histogram) OutsideSum(q Span) int64 {
	d := len(h.dims)
	lo := make([]int, d)
	hi := make([]int, d)
	for k := 0; k < d; k++ {
		lo[k] = 2*q.Lo[k] - 1
		hi[k] = 2*q.Hi[k] + 1
	}
	return h.Total() - h.cube.RangeSum(lo, hi)
}

// Estimate computes the d-dimensional S-EulerApprox counts for the query
// span under the N_cd = 0 assumption: N_d = |S| − n_ii exactly, N_cs =
// |S| − n'_ei, N_o the remainder. Crossover objects inflate n'_ei in every
// dimension. How containing objects show up in n'_ei, however, is
// dimension-specific: the outside sum evaluates (−1)^d · χ_c (the
// compactly-supported Euler characteristic) of each object∩(query
// exterior) region, and for the open shell a containing object leaves
// around the query, χ_c = (−1)^d − 1 — so such an object contributes
// 1 − (−1)^d to n'_ei. The paper's loophole effect (a contribution of 0)
// is special to d = 2; in d = 1 and d = 3 containing objects are counted
// twice instead (see package interval for the 1-d consequences).
// TestLoopholeByDimension pins this down.
func (h *Histogram) Estimate(q Span) (disjoint, contains, overlap int64) {
	nii := h.InsideSum(q)
	nei := h.OutsideSum(q)
	nd := h.n - nii
	return nd, h.n - nei, nei - nd
}
