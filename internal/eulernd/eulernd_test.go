package eulernd

import (
	"math/rand"
	"testing"

	"spatialhist/internal/euler"
	"spatialhist/internal/grid"
)

func randSpan(r *rand.Rand, dims []int) Span {
	d := len(dims)
	s := Span{Lo: make([]int, d), Hi: make([]int, d)}
	for k, n := range dims {
		s.Lo[k] = r.Intn(n)
		s.Hi[k] = s.Lo[k] + r.Intn(n-s.Lo[k])
	}
	return s
}

func TestBuilderPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty dims": func() { NewBuilder(nil) },
		"zero dim":   func() { NewBuilder([]int{4, 0}) },
		"bad span":   func() { NewBuilder([]int{4, 4}).Add(Span{Lo: []int{0, 0}, Hi: []int{4, 0}}) },
		"wrong rank": func() { NewBuilder([]int{4, 4}).Add(Span{Lo: []int{0}, Hi: []int{1}}) },
		"use after build": func() {
			b := NewBuilder([]int{4})
			b.Add(Span{Lo: []int{0}, Hi: []int{1}})
			b.Build()
			b.Add(Span{Lo: []int{0}, Hi: []int{1}})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: must panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTotalEqualsCount(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 100; trial++ {
		d := 1 + r.Intn(4)
		dims := make([]int, d)
		for k := range dims {
			dims[k] = 2 + r.Intn(6)
		}
		b := NewBuilder(dims)
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			b.Add(randSpan(r, dims))
		}
		if b.Count() != int64(n) {
			t.Fatalf("builder Count = %d", b.Count())
		}
		h := b.Build()
		if h.Total() != int64(n) || h.Count() != int64(n) {
			t.Fatalf("dims %v: Total=%d Count=%d want %d", dims, h.Total(), h.Count(), n)
		}
	}
}

func TestInsideSumExact3D(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for trial := 0; trial < 60; trial++ {
		dims := []int{2 + r.Intn(7), 2 + r.Intn(7), 2 + r.Intn(7)}
		b := NewBuilder(dims)
		var spans []Span
		for i := 0; i < 50; i++ {
			s := randSpan(r, dims)
			spans = append(spans, s)
			b.Add(s)
		}
		h := b.Build()
		for qt := 0; qt < 30; qt++ {
			q := randSpan(r, dims)
			var want int64
			for _, s := range spans {
				if q.Intersects(s) {
					want++
				}
			}
			if got := h.InsideSum(q); got != want {
				t.Fatalf("dims %v InsideSum(%v) = %d, want %d", dims, q, got, want)
			}
		}
	}
}

func TestMatches2DEuler(t *testing.T) {
	// The d=2 instance must agree with package euler on every regional sum.
	r := rand.New(rand.NewSource(103))
	nx, ny := 9, 7
	g := grid.NewUnit(nx, ny)
	eb := euler.NewBuilder(g)
	nb := NewBuilder([]int{nx, ny})
	for i := 0; i < 80; i++ {
		i1, j1 := r.Intn(nx), r.Intn(ny)
		i2, j2 := i1+r.Intn(nx-i1), j1+r.Intn(ny-j1)
		eb.AddSpan(grid.Span{I1: i1, J1: j1, I2: i2, J2: j2})
		nb.Add(Span{Lo: []int{i1, j1}, Hi: []int{i2, j2}})
	}
	h2 := eb.Build()
	hn := nb.Build()
	if h2.StorageBuckets() != hn.StorageBuckets() {
		t.Fatalf("storage differs: %d vs %d", h2.StorageBuckets(), hn.StorageBuckets())
	}
	for i1 := 0; i1 < nx; i1++ {
		for j1 := 0; j1 < ny; j1++ {
			for qt := 0; qt < 4; qt++ {
				i2, j2 := i1+r.Intn(nx-i1), j1+r.Intn(ny-j1)
				q2 := grid.Span{I1: i1, J1: j1, I2: i2, J2: j2}
				qn := Span{Lo: []int{i1, j1}, Hi: []int{i2, j2}}
				if h2.InsideSum(q2) != hn.InsideSum(qn) {
					t.Fatalf("InsideSum differs at %v", q2)
				}
				if h2.OutsideSum(q2) != hn.OutsideSum(qn) {
					t.Fatalf("OutsideSum differs at %v", q2)
				}
			}
		}
	}
}

func TestEstimateExactOnCleanData3D(t *testing.T) {
	// Small objects, large queries: S-Euler is exact in 3-d just as in 2-d.
	r := rand.New(rand.NewSource(104))
	dims := []int{10, 10, 10}
	b := NewBuilder(dims)
	var spans []Span
	for i := 0; i < 100; i++ {
		s := Span{Lo: make([]int, 3), Hi: make([]int, 3)}
		for k := 0; k < 3; k++ {
			s.Lo[k] = r.Intn(9)
			s.Hi[k] = s.Lo[k] + r.Intn(2) // at most 2 cells per axis
		}
		spans = append(spans, s)
		b.Add(s)
	}
	h := b.Build()
	for qt := 0; qt < 100; qt++ {
		q := Span{Lo: make([]int, 3), Hi: make([]int, 3)}
		for k := 0; k < 3; k++ {
			q.Lo[k] = r.Intn(7)
			q.Hi[k] = q.Lo[k] + 2 + r.Intn(10-q.Lo[k]-2) // at least 3 cells per axis
		}
		var wantD, wantCs, wantO int64
		for _, s := range spans {
			switch {
			case !q.Intersects(s):
				wantD++
			case q.Contains(s):
				wantCs++
			default:
				wantO++
			}
		}
		d, cs, o := h.Estimate(q)
		if d != wantD || cs != wantCs || o != wantO {
			t.Fatalf("Estimate(%v) = %d/%d/%d, want %d/%d/%d", q, d, cs, o, wantD, wantCs, wantO)
		}
	}
}

func TestLoopholeByDimension(t *testing.T) {
	// A containing object contributes 1 − (−1)^d to the outside sum: the
	// paper's loophole effect (a contribution of 0) is special to d = 2;
	// in odd dimensions containing objects are counted twice.
	for _, c := range []struct {
		dims []int
		want int64
	}{
		{[]int{8}, 2},
		{[]int{8, 8}, 0},
		{[]int{8, 8, 8}, 2},
		{[]int{6, 6, 6, 6}, 0},
	} {
		d := len(c.dims)
		b := NewBuilder(c.dims)
		obj := Span{Lo: make([]int, d), Hi: make([]int, d)}
		q := Span{Lo: make([]int, d), Hi: make([]int, d)}
		for k := 0; k < d; k++ {
			obj.Lo[k], obj.Hi[k] = 1, c.dims[k]-2
			q.Lo[k], q.Hi[k] = 3, c.dims[k]-4+1
		}
		h := b.buildWith(obj)
		if got := h.OutsideSum(q); got != c.want {
			t.Errorf("d=%d: containing object OutsideSum = %d, want %d", d, got, c.want)
		}
	}

	// A 3-d column through the query ("crossover") also counts twice: its
	// exterior intersection is two solid pieces.
	b := NewBuilder([]int{8, 8, 8})
	b.Add(Span{Lo: []int{3, 3, 0}, Hi: []int{4, 4, 7}})
	h := b.Build()
	q := Span{Lo: []int{3, 3, 3}, Hi: []int{4, 4, 4}}
	if got := h.OutsideSum(q); got != 2 {
		t.Fatalf("3-d crossover: OutsideSum = %d, want 2", got)
	}
}

// buildWith inserts one span and builds, a test shorthand.
func (b *Builder) buildWith(s Span) *Histogram {
	b.Add(s)
	return b.Build()
}

func TestSpanHelpers(t *testing.T) {
	dims := []int{5, 5}
	s := Span{Lo: []int{1, 1}, Hi: []int{3, 2}}
	if !s.Valid(dims) || s.Cells() != 6 {
		t.Fatal("Span basics broken")
	}
	if (Span{Lo: []int{1}, Hi: []int{1}}).Valid(dims) {
		t.Fatal("rank mismatch must be invalid")
	}
	if !s.Contains(Span{Lo: []int{2, 1}, Hi: []int{3, 2}}) {
		t.Fatal("Contains broken")
	}
	if !(Span{Lo: []int{2, 2}, Hi: []int{2, 2}}).ContainsStrict(Span{Lo: []int{1, 1}, Hi: []int{3, 3}}) {
		t.Fatal("ContainsStrict broken")
	}
	if (Span{Lo: []int{1, 1}, Hi: []int{2, 2}}).ContainsStrict(Span{Lo: []int{1, 0}, Hi: []int{3, 3}}) {
		t.Fatal("ContainsStrict must require slack on every side")
	}
}
