package rtree

import "fmt"

// check validates the subtree rooted at n and returns its depth. Fan-out
// minimums are not enforced on the root (standard R-tree relaxation) and
// maximums always are. Bulk-loaded trees may under-fill the last node per
// level, so minimums below the root are only enforced for trees built by
// dynamic insertion; rather than track provenance, check enforces the
// universally true bound: at least one entry, at most maxEntries.
func (n *node) check(t *Tree, isRoot bool) (depth int, err error) {
	cnt := n.entryCount()
	if cnt == 0 && !isRoot {
		return 0, fmt.Errorf("rtree: empty non-root node")
	}
	if cnt > t.maxEntries {
		return 0, fmt.Errorf("rtree: node with %d entries exceeds max %d", cnt, t.maxEntries)
	}
	if n.leaf {
		if len(n.rects) != len(n.ids) {
			return 0, fmt.Errorf("rtree: leaf rects/ids length mismatch %d/%d", len(n.rects), len(n.ids))
		}
		for _, r := range n.rects {
			if !n.mbr.Contains(r) {
				return 0, fmt.Errorf("rtree: leaf MBR %v does not cover entry %v", n.mbr, r)
			}
		}
		return 1, nil
	}
	if len(n.rects) != 0 || len(n.ids) != 0 {
		return 0, fmt.Errorf("rtree: internal node carries leaf entries")
	}
	childDepth := -1
	for _, c := range n.children {
		if !n.mbr.Contains(c.mbr) {
			return 0, fmt.Errorf("rtree: node MBR %v does not cover child MBR %v", n.mbr, c.mbr)
		}
		d, err := c.check(t, false)
		if err != nil {
			return 0, err
		}
		if childDepth == -1 {
			childDepth = d
		} else if d != childDepth {
			return 0, fmt.Errorf("rtree: unbalanced tree: child depths %d and %d", childDepth, d)
		}
	}
	return childDepth + 1, nil
}
