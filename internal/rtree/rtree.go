// Package rtree implements an R-tree spatial index over object MBRs: the
// "index structure on top of the actual data" that the GeoBrowsing
// prototype of §1 uses to answer browsing queries exactly, and the baseline
// whose unsatisfactory performance at high tile counts motivates the
// paper's histogram approach.
//
// The tree supports Guttman-style dynamic insertion with quadratic splits
// and Sort-Tile-Recursive (STR) bulk loading, plus the query operations a
// browsing backend needs: Level 2 relation counting with subtree pruning,
// range search, and point/rect lookups.
package rtree

import (
	"fmt"

	"spatialhist/internal/geom"
)

// Default node fan-out bounds. MinEntries = MaxEntries * 40% per Guttman's
// recommendation.
const (
	DefaultMaxEntries = 16
	DefaultMinEntries = 6
)

// Tree is an R-tree over geom.Rect values with int64 payloads (object ids).
// The zero value is not usable; call New or Bulk.
type Tree struct {
	root       *node
	size       int
	maxEntries int
	minEntries int
	height     int
	// path is the descent stack of the in-flight Insert, reused across
	// inserts to avoid allocation. The tree is not safe for concurrent
	// mutation.
	path []*node
}

type node struct {
	leaf     bool
	mbr      geom.Rect
	children []*node     // internal nodes
	rects    []geom.Rect // leaves
	ids      []int64     // leaves, parallel to rects
}

// New returns an empty R-tree with the given fan-out bounds. maxEntries
// must be at least 4 and minEntries in [2, maxEntries/2].
func New(minEntries, maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("rtree: maxEntries %d too small (min 4)", maxEntries)
	}
	if minEntries < 2 || minEntries > maxEntries/2 {
		return nil, fmt.Errorf("rtree: minEntries %d out of range [2, %d]", minEntries, maxEntries/2)
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: minEntries,
		height:     1,
	}, nil
}

// NewDefault returns an empty R-tree with the default fan-out.
func NewDefault() *Tree {
	t, err := New(DefaultMinEntries, DefaultMaxEntries)
	if err != nil {
		panic(err) // defaults are valid by construction
	}
	return t
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// Bounds returns the MBR of all indexed objects; ok is false for an empty
// tree.
func (t *Tree) Bounds() (mbr geom.Rect, ok bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr, true
}

// Insert adds one object MBR with its id.
func (t *Tree) Insert(r geom.Rect, id int64) {
	if !r.Valid() {
		panic(fmt.Sprintf("rtree: inserting invalid rect %v", r))
	}
	leaf := t.chooseLeaf(t.root, r)
	leaf.rects = append(leaf.rects, r)
	leaf.ids = append(leaf.ids, id)
	if t.size == 0 {
		leaf.mbr = r
	} else {
		leaf.mbr = leaf.mbr.Union(r)
	}
	t.size++
	t.adjustAndSplit(r)
}

// chooseLeaf descends to the leaf whose MBR needs the least enlargement,
// recording the path so adjustAndSplit can propagate MBR growth and splits.
func (t *Tree) chooseLeaf(n *node, r geom.Rect) *node {
	t.path = t.path[:0]
	for {
		t.path = append(t.path, n)
		if n.leaf {
			return n
		}
		best := 0
		bestEnl := n.children[0].mbr.EnlargementNeeded(r)
		bestArea := n.children[0].mbr.Area()
		for i := 1; i < len(n.children); i++ {
			enl := n.children[i].mbr.EnlargementNeeded(r)
			area := n.children[i].mbr.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
	}
}

// adjustAndSplit walks the recorded insertion path root-ward, enlarging
// MBRs and splitting overflowing nodes.
func (t *Tree) adjustAndSplit(r geom.Rect) {
	// Enlarge MBRs along the path; the leaf's own MBR is already updated,
	// and any ancestors predate this insert so their MBRs are valid.
	for _, n := range t.path[:len(t.path)-1] {
		n.mbr = n.mbr.Union(r)
	}
	// Split bottom-up.
	for i := len(t.path) - 1; i >= 0; i-- {
		n := t.path[i]
		if n.entryCount() <= t.maxEntries {
			break
		}
		left, right := t.splitNode(n)
		if i == 0 {
			// Root split: grow the tree.
			t.root = &node{
				leaf:     false,
				mbr:      left.mbr.Union(right.mbr),
				children: []*node{left, right},
			}
			t.height++
			return
		}
		parent := t.path[i-1]
		// Replace n with the two halves.
		for k, c := range parent.children {
			if c == n {
				parent.children[k] = left
				parent.children = append(parent.children, right)
				break
			}
		}
	}
}

func (n *node) entryCount() int {
	if n.leaf {
		return len(n.rects)
	}
	return len(n.children)
}

// splitNode performs Guttman's quadratic split, mutating n into the left
// half and returning both halves.
func (t *Tree) splitNode(n *node) (left, right *node) {
	if n.leaf {
		return t.splitLeaf(n)
	}
	return t.splitInternal(n)
}

// quadraticSeeds picks the pair of entries wasting the most area together.
func quadraticSeeds(mbrs []geom.Rect) (int, int) {
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(mbrs); i++ {
		for j := i + 1; j < len(mbrs); j++ {
			waste := mbrs[i].Union(mbrs[j]).Area() - mbrs[i].Area() - mbrs[j].Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	return s1, s2
}

// distribute assigns each remaining index to group 0 or 1 by least
// enlargement, forcing assignment when one group must take everything left
// to reach the minimum.
func (t *Tree) distribute(mbrs []geom.Rect, s1, s2 int) (g0, g1 []int) {
	g0 = []int{s1}
	g1 = []int{s2}
	mbr0, mbr1 := mbrs[s1], mbrs[s2]
	remaining := make([]int, 0, len(mbrs)-2)
	for i := range mbrs {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for k, idx := range remaining {
		left := len(remaining) - k
		if len(g0)+left == t.minEntries {
			g0 = append(g0, remaining[k:]...)
			return g0, g1
		}
		if len(g1)+left == t.minEntries {
			g1 = append(g1, remaining[k:]...)
			return g0, g1
		}
		d0 := mbr0.EnlargementNeeded(mbrs[idx])
		d1 := mbr1.EnlargementNeeded(mbrs[idx])
		if d0 < d1 || (d0 == d1 && mbr0.Area() <= mbr1.Area()) {
			g0 = append(g0, idx)
			mbr0 = mbr0.Union(mbrs[idx])
		} else {
			g1 = append(g1, idx)
			mbr1 = mbr1.Union(mbrs[idx])
		}
	}
	return g0, g1
}

func (t *Tree) splitLeaf(n *node) (*node, *node) {
	s1, s2 := quadraticSeeds(n.rects)
	g0, g1 := t.distribute(n.rects, s1, s2)
	mk := func(idx []int) *node {
		out := &node{leaf: true}
		for _, i := range idx {
			out.rects = append(out.rects, n.rects[i])
			out.ids = append(out.ids, n.ids[i])
		}
		out.mbr = geom.MBROf(out.rects)
		return out
	}
	return mk(g0), mk(g1)
}

func (t *Tree) splitInternal(n *node) (*node, *node) {
	mbrs := make([]geom.Rect, len(n.children))
	for i, c := range n.children {
		mbrs[i] = c.mbr
	}
	s1, s2 := quadraticSeeds(mbrs)
	g0, g1 := t.distribute(mbrs, s1, s2)
	mk := func(idx []int) *node {
		out := &node{leaf: false}
		ms := make([]geom.Rect, 0, len(idx))
		for _, i := range idx {
			out.children = append(out.children, n.children[i])
			ms = append(ms, n.children[i].mbr)
		}
		out.mbr = geom.MBROf(ms)
		return out
	}
	return mk(g0), mk(g1)
}
