package rtree

// JoinPairs enumerates every pair of objects (one from a, one from b)
// whose MBR interiors intersect, calling visit(ida, idb) once per pair —
// the classic dual-tree R-tree spatial join. Subtree pairs are pruned when
// the node MBR interiors are disjoint, which is sound because a child's
// open rectangle is contained in its parent MBR's closure and two rects
// with intersecting interiors have intersecting-interior closures'
// interiors; the paper's shrinking convention makes interior intersection
// (not mere touching) the join predicate, matching what the Euler
// histograms count.
func JoinPairs(a, b *Tree, visit func(ida, idb int64)) {
	if a.size == 0 || b.size == 0 {
		return
	}
	joinNodes(a.root, b.root, visit)
}

func joinNodes(na, nb *node, visit func(ida, idb int64)) {
	if !na.mbr.InteriorsIntersect(nb.mbr) {
		return
	}
	switch {
	case na.leaf && nb.leaf:
		for i, ra := range na.rects {
			for k, rb := range nb.rects {
				if ra.InteriorsIntersect(rb) {
					visit(na.ids[i], nb.ids[k])
				}
			}
		}
	case na.leaf:
		for _, c := range nb.children {
			joinNodes(na, c, visit)
		}
	case nb.leaf:
		for _, c := range na.children {
			joinNodes(c, nb, visit)
		}
	default:
		// Descend the larger-area node: keeps the recursion balanced when
		// the trees differ in height or skew.
		if na.mbr.Area() >= nb.mbr.Area() {
			for _, c := range na.children {
				joinNodes(c, nb, visit)
			}
		} else {
			for _, c := range nb.children {
				joinNodes(na, c, visit)
			}
		}
	}
}

// JoinCount returns the number of interior-intersecting MBR pairs between
// the two trees — the exact join cardinality the two-histogram product-sum
// estimate is checked against.
func JoinCount(a, b *Tree) int64 {
	var n int64
	JoinPairs(a, b, func(_, _ int64) { n++ })
	return n
}
