package rtree

import (
	"sort"

	"spatialhist/internal/geom"
)

// Bulk builds a tree from a set of MBRs using Sort-Tile-Recursive (STR)
// packing: objects are sorted into vertical slices by center x, each slice
// sorted by center y, and leaves filled to capacity; levels are packed the
// same way recursively. Ids are the indices into rects. STR yields nearly
// full nodes and is how the experiment harness builds the exact baseline
// for millions of objects.
func Bulk(rects []geom.Rect, minEntries, maxEntries int) (*Tree, error) {
	t, err := New(minEntries, maxEntries)
	if err != nil {
		return nil, err
	}
	if len(rects) == 0 {
		return t, nil
	}
	type entry struct {
		r  geom.Rect
		id int64
	}
	entries := make([]entry, len(rects))
	for i, r := range rects {
		if !r.Valid() {
			panic("rtree: Bulk with invalid rect")
		}
		entries[i] = entry{r: r, id: int64(i)}
	}

	// Pack leaves.
	per := maxEntries
	nLeaves := (len(entries) + per - 1) / per
	nSlices := int(sqrtCeil(nLeaves))
	sliceSize := nSlices * per

	sort.Slice(entries, func(a, b int) bool {
		return entries[a].r.Center().X < entries[b].r.Center().X
	})
	leaves := make([]*node, 0, nLeaves)
	for s := 0; s < len(entries); s += sliceSize {
		end := min(s+sliceSize, len(entries))
		sl := entries[s:end]
		sort.Slice(sl, func(a, b int) bool {
			return sl[a].r.Center().Y < sl[b].r.Center().Y
		})
		for o := 0; o < len(sl); o += per {
			oe := min(o+per, len(sl))
			leaf := &node{leaf: true}
			for _, e := range sl[o:oe] {
				leaf.rects = append(leaf.rects, e.r)
				leaf.ids = append(leaf.ids, e.id)
			}
			leaf.mbr = geom.MBROf(leaf.rects)
			leaves = append(leaves, leaf)
		}
	}

	// Pack upper levels.
	level := leaves
	height := 1
	for len(level) > 1 {
		next := packLevel(level, maxEntries)
		level = next
		height++
	}
	t.root = level[0]
	t.size = len(entries)
	t.height = height
	return t, nil
}

// BulkDefault builds a tree with the default fan-out.
func BulkDefault(rects []geom.Rect) *Tree {
	t, err := Bulk(rects, DefaultMinEntries, DefaultMaxEntries)
	if err != nil {
		panic(err) // defaults are valid by construction
	}
	return t
}

func packLevel(nodes []*node, per int) []*node {
	nParents := (len(nodes) + per - 1) / per
	nSlices := int(sqrtCeil(nParents))
	sliceSize := nSlices * per
	sort.Slice(nodes, func(a, b int) bool {
		return nodes[a].mbr.Center().X < nodes[b].mbr.Center().X
	})
	parents := make([]*node, 0, nParents)
	for s := 0; s < len(nodes); s += sliceSize {
		end := min(s+sliceSize, len(nodes))
		sl := nodes[s:end]
		sort.Slice(sl, func(a, b int) bool {
			return sl[a].mbr.Center().Y < sl[b].mbr.Center().Y
		})
		for o := 0; o < len(sl); o += per {
			oe := min(o+per, len(sl))
			p := &node{leaf: false, children: append([]*node(nil), sl[o:oe]...)}
			ms := make([]geom.Rect, len(p.children))
			for i, c := range p.children {
				ms[i] = c.mbr
			}
			p.mbr = geom.MBROf(ms)
			parents = append(parents, p)
		}
	}
	return parents
}

func sqrtCeil(n int) int64 {
	s := int64(1)
	for s*s < int64(n) {
		s++
	}
	return s
}

// Search appends the ids of all objects whose closed MBRs intersect q and
// returns the result.
func (t *Tree) Search(q geom.Rect, ids []int64) []int64 {
	if t.size == 0 {
		return ids
	}
	return t.root.search(q, ids)
}

func (n *node) search(q geom.Rect, ids []int64) []int64 {
	if !n.mbr.Intersects(q) {
		return ids
	}
	if n.leaf {
		for i, r := range n.rects {
			if r.Intersects(q) {
				ids = append(ids, n.ids[i])
			}
		}
		return ids
	}
	for _, c := range n.children {
		ids = c.search(q, ids)
	}
	return ids
}

// CountRel2 classifies every object against the (closed, non-degenerate)
// query rectangle and tallies the Level 2 counts — the exact answer the
// GeoBrowsing prototype computes per tile. Degenerate objects use the
// browsing convention of geom.Level2Browse. Subtrees are pruned in two
// ways:
//
//   - a subtree whose MBR does not intersect the closed query is disjoint
//     wholesale;
//   - a subtree whose MBR lies strictly inside the query holds only
//     contained objects (its objects cannot reach the query's exterior).
func (t *Tree) CountRel2(q geom.Rect) geom.Rel2Counts {
	var c geom.Rel2Counts
	if t.size > 0 {
		t.root.countRel2(q, &c)
	}
	return c
}

func (n *node) countRel2(q geom.Rect, c *geom.Rel2Counts) {
	if !n.mbr.Intersects(q) {
		c.Disjoint += int64(n.subtreeSize())
		return
	}
	if q.ContainsStrict(n.mbr) {
		// Everything below sits strictly inside the query: contained,
		// under both the regular and the degenerate-object convention.
		c.Contains += int64(n.subtreeSize())
		return
	}
	if n.leaf {
		for _, r := range n.rects {
			c.Add(geom.Level2Browse(q, r))
		}
		return
	}
	for _, ch := range n.children {
		ch.countRel2(q, c)
	}
}

// subtreeSize counts the objects below n. Sizes are not cached on nodes:
// browsing workloads are read-heavy after a bulk load and the count is a
// cheap walk only for pruned subtrees near the query boundary.
func (n *node) subtreeSize() int {
	if n.leaf {
		return len(n.rects)
	}
	total := 0
	for _, c := range n.children {
		total += c.subtreeSize()
	}
	return total
}

// checkInvariants validates the structural invariants of the tree: MBRs
// cover their entries, fan-out bounds hold (root excepted), and all leaves
// sit at the same depth. It is exported to tests via export_test.go.
func (t *Tree) checkInvariants() error {
	if t.size == 0 {
		return nil
	}
	_, err := t.root.check(t, true)
	return err
}
