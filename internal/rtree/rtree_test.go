package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialhist/internal/dataset"
	"spatialhist/internal/geom"
)

func randRect(r *rand.Rand, world float64) geom.Rect {
	x := r.Float64() * world
	y := r.Float64() * world
	return geom.NewRect(x, y, x+r.Float64()*world/8, y+r.Float64()*world/8)
}

func TestNewValidation(t *testing.T) {
	cases := []struct{ minE, maxE int }{
		{2, 3}, // max too small
		{1, 8}, // min too small
		{5, 8}, // min > max/2
	}
	for _, c := range cases {
		if _, err := New(c.minE, c.maxE); err == nil {
			t.Errorf("New(%d,%d) must error", c.minE, c.maxE)
		}
	}
	if _, err := New(2, 4); err != nil {
		t.Errorf("New(2,4): %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewDefault()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len/Height = %d/%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("empty tree must have no bounds")
	}
	if ids := tr.Search(geom.NewRect(0, 0, 1, 1), nil); len(ids) != 0 {
		t.Fatal("empty tree search must be empty")
	}
	if c := tr.CountRel2(geom.NewRect(0, 0, 1, 1)); c.Total() != 0 {
		t.Fatal("empty tree count must be zero")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSearchMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	tr := NewDefault()
	var rects []geom.Rect
	for i := 0; i < 800; i++ {
		rc := randRect(r, 100)
		tr.Insert(rc, int64(i))
		rects = append(rects, rc)
	}
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("800 objects must split past one leaf (height %d)", tr.Height())
	}
	for trial := 0; trial < 100; trial++ {
		q := randRect(r, 100)
		got := tr.Search(q, nil)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		var want []int64
		for i, rc := range rects {
			if rc.Intersects(q) {
				want = append(want, int64(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Search(%v): %d ids, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Search(%v): id mismatch at %d", q, i)
			}
		}
	}
}

func TestBulkMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	var rects []geom.Rect
	for i := 0; i < 3000; i++ {
		rects = append(rects, randRect(r, 100))
	}
	tr := BulkDefault(rects)
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b, ok := tr.Bounds()
	if !ok || !b.Contains(geom.MBROf(rects)) {
		t.Fatalf("Bounds = %v/%t", b, ok)
	}
	for trial := 0; trial < 50; trial++ {
		q := randRect(r, 100)
		got := tr.Search(q, nil)
		want := 0
		for _, rc := range rects {
			if rc.Intersects(q) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("Bulk Search: %d, want %d", len(got), want)
		}
	}
}

func TestBulkSmall(t *testing.T) {
	// One object and exactly-one-leaf cases.
	one := BulkDefault([]geom.Rect{geom.NewRect(1, 1, 2, 2)})
	if one.Len() != 1 || one.Height() != 1 {
		t.Fatalf("one-object tree: len=%d h=%d", one.Len(), one.Height())
	}
	empty := BulkDefault(nil)
	if empty.Len() != 0 {
		t.Fatal("empty bulk broken")
	}
}

func TestCountRel2MatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	var rects []geom.Rect
	for i := 0; i < 1500; i++ {
		switch r.Intn(3) {
		case 0: // points
			x, y := r.Float64()*100, r.Float64()*100
			rects = append(rects, geom.NewRect(x, y, x, y))
		case 1: // small rects
			rects = append(rects, randRect(r, 100))
		default: // big rects
			x, y := r.Float64()*60, r.Float64()*60
			rects = append(rects, geom.NewRect(x, y, x+10+r.Float64()*40, y+10+r.Float64()*40))
		}
	}
	for _, tr := range []*Tree{BulkDefault(rects), insertAll(rects)} {
		for trial := 0; trial < 60; trial++ {
			q := geom.NewRect(10+r.Float64()*40, 10+r.Float64()*40, 50+r.Float64()*40, 50+r.Float64()*40)
			var want geom.Rel2Counts
			for _, rc := range rects {
				want.Add(geom.Level2Browse(q, rc))
			}
			if got := tr.CountRel2(q); got != want {
				t.Fatalf("CountRel2(%v) = %+v, want %+v", q, got, want)
			}
		}
	}
}

func insertAll(rects []geom.Rect) *Tree {
	tr := NewDefault()
	for i, rc := range rects {
		tr.Insert(rc, int64(i))
	}
	return tr
}

func TestInsertDuplicatesAndDegenerate(t *testing.T) {
	tr := NewDefault()
	pt := geom.NewRect(5, 5, 5, 5)
	for i := 0; i < 100; i++ {
		tr.Insert(pt, int64(i)) // 100 identical points force splits
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Search(geom.NewRect(4, 4, 6, 6), nil)); got != 100 {
		t.Fatalf("found %d duplicates, want 100", got)
	}
	c := tr.CountRel2(geom.NewRect(0, 0, 10, 10))
	if c.Contains != 100 {
		t.Fatalf("points strictly inside must count as contains: %+v", c)
	}
}

func TestInsertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Insert of invalid rect must panic")
		}
	}()
	NewDefault().Insert(geom.Rect{XMin: 2, XMax: 1, YMax: 3}, 0)
}

func TestLargeDatasetInvariants(t *testing.T) {
	d := dataset.ADLLike(20000, 14)
	tr := BulkDefault(d.Rects)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("20k objects should give height >= 3, got %d", tr.Height())
	}
	// Whole-space query sees everything; contains + overlap == all.
	c := tr.CountRel2(d.Extent.Expand(1))
	if c.Total() != 20000 || c.Disjoint != 0 || c.Contained != 0 {
		t.Fatalf("whole-space count = %+v", c)
	}
}
