package baseline

import (
	"fmt"
	"math"

	"spatialhist/internal/euler"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/prefixsum"
)

// MinSkew is the Min-Skew spatial histogram of [APR99]: the grid's density
// surface is partitioned into a fixed number of rectangular buckets by
// greedy binary splits, each split chosen to maximally reduce the total
// spatial skew (the sum over buckets of the variance of cell densities
// within the bucket, weighted by cell count). Each bucket keeps the number
// of objects intersecting it and the average object extents, and queries
// are estimated from a per-bucket uniformity model.
//
// As our paper notes (§3), an object spanning several buckets is counted
// once per bucket, so Min-Skew can over-count and — more fundamentally —
// cannot distinguish contains from overlap. It is included as the Level 1
// prior art.
type MinSkew struct {
	g       *grid.Grid
	buckets []Bucket
	n       int64
}

// Bucket is one rectangular region of the Min-Skew partition.
type Bucket struct {
	Region grid.Span
	// N is the number of objects intersecting the region (each object is
	// counted in every bucket it touches, per [APR99]).
	N int64
	// AvgW and AvgH are the average object extents (in cells) of the
	// objects whose centers fall in the bucket, used by the uniformity
	// model; they fall back to the dataset-wide averages for empty buckets.
	AvgW, AvgH float64
}

// NewMinSkew builds a Min-Skew histogram with at most numBuckets buckets
// over g. Per-bucket intersect counts are computed exactly with an internal
// Euler histogram (a luxury [APR99] did not have, and strictly a gift to
// the baseline: its bucket statistics are as good as they can be).
func NewMinSkew(g *grid.Grid, rects []geom.Rect, numBuckets int) (*MinSkew, error) {
	if numBuckets < 1 {
		return nil, fmt.Errorf("baseline: numBuckets must be positive, got %d", numBuckets)
	}
	nx, ny := g.NX(), g.NY()

	// Density surface: objects intersecting each cell, via difference array.
	w := ny + 1
	diff := make([]int64, (nx+1)*w)
	var n int64
	var sumW, sumH float64
	spans := make([]grid.Span, 0, len(rects))
	for _, r := range rects {
		s, ok := g.Snap(r)
		if !ok {
			continue
		}
		spans = append(spans, s)
		n++
		sumW += float64(s.Width())
		sumH += float64(s.Height())
		diff[s.I1*w+s.J1]++
		diff[s.I1*w+s.J2+1]--
		diff[(s.I2+1)*w+s.J1]--
		diff[(s.I2+1)*w+s.J2+1]++
	}
	dens := make([]int64, nx*ny)
	densSq := make([]int64, nx*ny)
	colAcc := make([]int64, ny)
	for i := 0; i < nx; i++ {
		var rowAcc int64
		for j := 0; j < ny; j++ {
			rowAcc += diff[i*w+j]
			colAcc[j] += rowAcc
			d := colAcc[j]
			dens[i*ny+j] = d
			densSq[i*ny+j] = d * d
		}
	}
	sumP := prefixsum.NewSum2D(dens, nx, ny)
	sqP := prefixsum.NewSum2D(densSq, nx, ny)

	// Greedy skew-minimizing binary splits.
	regions := []grid.Span{{I1: 0, J1: 0, I2: nx - 1, J2: ny - 1}}
	skewOf := func(s grid.Span) float64 {
		cells := float64(s.Cells())
		sum := float64(sumP.RangeSum(s.I1, s.J1, s.I2, s.J2))
		sq := float64(sqP.RangeSum(s.I1, s.J1, s.I2, s.J2))
		return sq - sum*sum/cells // Σ(d−mean)² = Σd² − (Σd)²/n
	}
	for len(regions) < numBuckets {
		bestRegion, bestGain := -1, 0.0
		var bestLeft, bestRight grid.Span
		for ri, s := range regions {
			base := skewOf(s)
			for i := s.I1; i < s.I2; i++ { // vertical split after column i
				l := grid.Span{I1: s.I1, J1: s.J1, I2: i, J2: s.J2}
				r := grid.Span{I1: i + 1, J1: s.J1, I2: s.I2, J2: s.J2}
				if gain := base - skewOf(l) - skewOf(r); gain > bestGain {
					bestRegion, bestGain, bestLeft, bestRight = ri, gain, l, r
				}
			}
			for j := s.J1; j < s.J2; j++ { // horizontal split after row j
				l := grid.Span{I1: s.I1, J1: s.J1, I2: s.I2, J2: j}
				r := grid.Span{I1: s.I1, J1: j + 1, I2: s.I2, J2: s.J2}
				if gain := base - skewOf(l) - skewOf(r); gain > bestGain {
					bestRegion, bestGain, bestLeft, bestRight = ri, gain, l, r
				}
			}
		}
		if bestRegion < 0 {
			break // perfectly uniform everywhere: no split helps
		}
		regions[bestRegion] = bestLeft
		regions = append(regions, bestRight)
	}

	// Exact per-bucket intersect counts via an Euler histogram.
	eb := euler.NewBuilder(g)
	for _, s := range spans {
		eb.AddSpan(s)
	}
	eh := eb.Build()

	globalW, globalH := 1.0, 1.0
	if n > 0 {
		globalW = sumW / float64(n)
		globalH = sumH / float64(n)
	}
	// Average extents of center-resident objects per bucket.
	cellBucket := make([]int32, nx*ny)
	for bi, s := range regions {
		for i := s.I1; i <= s.I2; i++ {
			for j := s.J1; j <= s.J2; j++ {
				cellBucket[i*ny+j] = int32(bi)
			}
		}
	}
	type acc struct {
		cnt  int64
		w, h float64
	}
	accs := make([]acc, len(regions))
	for _, s := range spans {
		ci := (s.I1 + s.I2) / 2
		cj := (s.J1 + s.J2) / 2
		bi := cellBucket[ci*ny+cj]
		accs[bi].cnt++
		accs[bi].w += float64(s.Width())
		accs[bi].h += float64(s.Height())
	}

	ms := &MinSkew{g: g, n: n}
	for bi, s := range regions {
		b := Bucket{Region: s, N: eh.InsideSum(s), AvgW: globalW, AvgH: globalH}
		if accs[bi].cnt > 0 {
			b.AvgW = accs[bi].w / float64(accs[bi].cnt)
			b.AvgH = accs[bi].h / float64(accs[bi].cnt)
		}
		ms.buckets = append(ms.buckets, b)
	}
	return ms, nil
}

// Name identifies the algorithm.
func (m *MinSkew) Name() string { return fmt.Sprintf("MinSkew(%d)", len(m.buckets)) }

// Grid returns the resolution the histogram was built at.
func (m *MinSkew) Grid() *grid.Grid { return m.g }

// Count returns the number of summarized objects.
func (m *MinSkew) Count() int64 { return m.n }

// Buckets returns the bucket partition.
func (m *MinSkew) Buckets() []Bucket { return append([]Bucket(nil), m.buckets...) }

// StorageBuckets returns the number of stored values: four per bucket
// (region is two corners; count and extents).
func (m *MinSkew) StorageBuckets() int { return 4 * len(m.buckets) }

// Intersecting estimates the number of objects intersecting the query span
// with the per-bucket uniformity model: objects in bucket b are uniformly
// placed rectangles of the bucket's average extents, so the fraction whose
// (expanded) center box meets the query is the area ratio of the expanded
// query clipped to the bucket.
func (m *MinSkew) Intersecting(q grid.Span) float64 {
	var est float64
	for _, b := range m.buckets {
		if b.N == 0 {
			continue
		}
		// Expand the query by half the average extent on every side; the
		// centers falling inside the expansion intersect the query under
		// the uniformity model.
		ex1 := float64(q.I1) - b.AvgW/2
		ex2 := float64(q.I2+1) + b.AvgW/2
		ey1 := float64(q.J1) - b.AvgH/2
		ey2 := float64(q.J2+1) + b.AvgH/2
		frac := overlapFrac(b.Region, ex1, ey1, ex2, ey2)
		est += float64(b.N) * frac
	}
	return est
}

// Contains estimates the number of objects contained in the query span
// under the same uniformity model: an object of the bucket's average
// extents fits in the query iff its center lies in the query shrunk by half
// the extents. This naive Level 2 extension is exactly what §3 argues
// cannot work in general — kept as the strawman for the comparison bench.
func (m *MinSkew) Contains(q grid.Span) float64 {
	var est float64
	for _, b := range m.buckets {
		if b.N == 0 {
			continue
		}
		sx1 := float64(q.I1) + b.AvgW/2
		sx2 := float64(q.I2+1) - b.AvgW/2
		sy1 := float64(q.J1) + b.AvgH/2
		sy2 := float64(q.J2+1) - b.AvgH/2
		if sx2 <= sx1 || sy2 <= sy1 {
			continue // average object does not fit at all
		}
		frac := overlapFrac(b.Region, sx1, sy1, sx2, sy2)
		est += float64(b.N) * frac
	}
	return est
}

// overlapFrac returns the fraction of bucket region r (in cell coordinates)
// covered by the box [x1,x2]×[y1,y2].
func overlapFrac(r grid.Span, x1, y1, x2, y2 float64) float64 {
	bx1, bx2 := float64(r.I1), float64(r.I2+1)
	by1, by2 := float64(r.J1), float64(r.J2+1)
	ox := math.Min(bx2, x2) - math.Max(bx1, x1)
	oy := math.Min(by2, y2) - math.Max(by1, y1)
	if ox <= 0 || oy <= 0 {
		return 0
	}
	return (ox * oy) / ((bx2 - bx1) * (by2 - by1))
}
