// Package baseline implements the prior-art selectivity estimators the
// paper positions itself against (§2, §3): the Cumulative Density algorithm
// of Jin, An and Sivasubramaniam [JAS00] and the Min-Skew histogram of
// Acharya, Poosala and Ramaswamy [APR99].
//
// Both support only the Level 1 intersect relation. CD, like the Euler
// histogram, is exact for grid-aligned queries in O(N) storage; Min-Skew is
// a lossy bucketized summary whose per-bucket uniformity model also yields
// (crude) contains estimates — included to demonstrate why Level 2
// relations need the paper's machinery.
package baseline

import (
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/prefixsum"
)

// CD is the Cumulative Density structure: four cumulative corner-count
// grids. For an object snapped to cells [i1..i2]×[j1..j2] the four grids
// count respectively the corners (i1,j1), (i2,j1), (i1,j2), (i2,j2); a
// grid-aligned intersect query is then answered exactly by
// inclusion–exclusion over four dominance counts:
//
//	N∩(q) = Pss(a2,b2) − Pes(a1−1,b2) − Pse(a2,b1−1) + Pee(a1−1,b1−1)
//
// where [a1..a2]×[b1..b2] is the query span. Storage is 4·N cells, the
// same O(N) class as the Euler histogram.
type CD struct {
	g  *grid.Grid
	ss *prefixsum.Sum2D // (i1, j1)
	es *prefixsum.Sum2D // (i2, j1)
	se *prefixsum.Sum2D // (i1, j2)
	ee *prefixsum.Sum2D // (i2, j2)
	n  int64
}

// NewCD builds the CD structure for the given objects at g's resolution.
// Objects outside the space are skipped.
func NewCD(g *grid.Grid, rects []geom.Rect) *CD {
	nx, ny := g.NX(), g.NY()
	ss := make([]int64, nx*ny)
	es := make([]int64, nx*ny)
	se := make([]int64, nx*ny)
	ee := make([]int64, nx*ny)
	var n int64
	for _, r := range rects {
		s, ok := g.Snap(r)
		if !ok {
			continue
		}
		n++
		ss[s.I1*ny+s.J1]++
		es[s.I2*ny+s.J1]++
		se[s.I1*ny+s.J2]++
		ee[s.I2*ny+s.J2]++
	}
	return &CD{
		g:  g,
		ss: prefixsum.NewSum2D(ss, nx, ny),
		es: prefixsum.NewSum2D(es, nx, ny),
		se: prefixsum.NewSum2D(se, nx, ny),
		ee: prefixsum.NewSum2D(ee, nx, ny),
		n:  n,
	}
}

// Name identifies the algorithm.
func (c *CD) Name() string { return "CD" }

// Grid returns the resolution the structure answers queries at.
func (c *CD) Grid() *grid.Grid { return c.g }

// Count returns the number of summarized objects.
func (c *CD) Count() int64 { return c.n }

// StorageBuckets returns the number of stored values: four corner grids.
func (c *CD) StorageBuckets() int { return 4 * c.g.Cells() }

// Intersecting returns the exact number of objects intersecting the query
// span. Constant time.
func (c *CD) Intersecting(q grid.Span) int64 {
	return c.ss.RangeSum(0, 0, q.I2, q.J2) -
		c.es.RangeSum(0, 0, q.I1-1, q.J2) -
		c.se.RangeSum(0, 0, q.I2, q.J1-1) +
		c.ee.RangeSum(0, 0, q.I1-1, q.J1-1)
}

// Disjoint returns the exact number of objects disjoint from the query
// span.
func (c *CD) Disjoint(q grid.Span) int64 { return c.n - c.Intersecting(q) }
