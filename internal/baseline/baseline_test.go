package baseline

import (
	"math"
	"math/rand"
	"testing"

	"spatialhist/internal/dataset"
	"spatialhist/internal/exact"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
)

func TestCDExactIntersect(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		nx, ny := 5+r.Intn(20), 5+r.Intn(20)
		g := grid.NewUnit(nx, ny)
		var rects []geom.Rect
		for k := 0; k < 150; k++ {
			x, y := r.Float64()*float64(nx), r.Float64()*float64(ny)
			rects = append(rects, geom.NewRect(x, y,
				math.Min(x+r.Float64()*float64(nx)/2, float64(nx)),
				math.Min(y+r.Float64()*float64(ny)/2, float64(ny))))
		}
		cd := NewCD(g, rects)
		if cd.Count() != 150 {
			t.Fatalf("Count = %d", cd.Count())
		}
		spans := exact.Spans(g, rects)
		for qt := 0; qt < 40; qt++ {
			i1, j1 := r.Intn(nx), r.Intn(ny)
			q := grid.Span{I1: i1, J1: j1, I2: i1 + r.Intn(nx-i1), J2: j1 + r.Intn(ny-j1)}
			want := exact.EvaluateQuery(spans, q).Intersecting()
			if got := cd.Intersecting(q); got != want {
				t.Fatalf("CD.Intersecting(%v) = %d, want %d", q, got, want)
			}
			if got := cd.Disjoint(q); got != int64(len(spans))-want {
				t.Fatalf("CD.Disjoint wrong")
			}
		}
	}
}

func TestCDSkipsOutsideAndStorage(t *testing.T) {
	g := grid.NewUnit(10, 10)
	cd := NewCD(g, []geom.Rect{
		geom.NewRect(1, 1, 2, 2),
		geom.NewRect(100, 100, 101, 101),
	})
	if cd.Count() != 1 {
		t.Fatalf("Count = %d, want 1", cd.Count())
	}
	if cd.StorageBuckets() != 400 {
		t.Fatalf("StorageBuckets = %d, want 400", cd.StorageBuckets())
	}
	if cd.Name() != "CD" || cd.Grid() != g {
		t.Fatal("accessors broken")
	}
}

func TestMinSkewValidation(t *testing.T) {
	g := grid.NewUnit(4, 4)
	if _, err := NewMinSkew(g, nil, 0); err == nil {
		t.Fatal("zero buckets must error")
	}
}

func TestMinSkewPartition(t *testing.T) {
	g := grid.NewUnit(16, 16)
	d := dataset.SpSkew(3000, 71)
	// sp_skew lives in 360x180; build a matching grid instead.
	g = grid.New(d.Extent, 36, 18)
	ms, err := NewMinSkew(g, d.Rects, 24)
	if err != nil {
		t.Fatal(err)
	}
	buckets := ms.Buckets()
	if len(buckets) < 2 || len(buckets) > 24 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	// Buckets must partition the grid exactly.
	covered := make(map[[2]int]int)
	for _, b := range buckets {
		for i := b.Region.I1; i <= b.Region.I2; i++ {
			for j := b.Region.J1; j <= b.Region.J2; j++ {
				covered[[2]int{i, j}]++
			}
		}
	}
	if len(covered) != 36*18 {
		t.Fatalf("buckets cover %d cells, want %d", len(covered), 36*18)
	}
	for cell, times := range covered {
		if times != 1 {
			t.Fatalf("cell %v in %d buckets", cell, times)
		}
	}
	if ms.StorageBuckets() != 4*len(buckets) {
		t.Fatal("storage accounting wrong")
	}
	if ms.Count() != 3000 {
		t.Fatalf("Count = %d", ms.Count())
	}
}

func TestMinSkewEstimateQuality(t *testing.T) {
	// On uniform small-object data the uniformity model should land within
	// ~25% of the truth for mid-size queries; and more buckets should not
	// make the total-space estimate worse.
	r := rand.New(rand.NewSource(62))
	g := grid.NewUnit(40, 40)
	var rects []geom.Rect
	for k := 0; k < 4000; k++ {
		x, y := r.Float64()*38, r.Float64()*38
		rects = append(rects, geom.NewRect(x, y, x+0.5+r.Float64(), y+0.5+r.Float64()))
	}
	ms, err := NewMinSkew(g, rects, 16)
	if err != nil {
		t.Fatal(err)
	}
	spans := exact.Spans(g, rects)
	q := grid.Span{I1: 10, J1: 10, I2: 24, J2: 24}
	want := float64(exact.EvaluateQuery(spans, q).Intersecting())
	got := ms.Intersecting(q)
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("MinSkew intersect estimate %.1f vs exact %.0f (off by >25%%)", got, want)
	}
	// Contains estimate exists and is in a sane range on this clean data.
	wantCs := float64(exact.EvaluateQuery(spans, q).Contains)
	gotCs := ms.Contains(q)
	if gotCs < 0 || gotCs > float64(len(rects)) {
		t.Fatalf("MinSkew contains estimate %.1f out of range", gotCs)
	}
	if wantCs > 100 && math.Abs(gotCs-wantCs)/wantCs > 0.5 {
		t.Fatalf("MinSkew contains estimate %.1f vs exact %.0f (off by >50%% on easy data)", gotCs, wantCs)
	}
}

func TestMinSkewSplitsFollowSkew(t *testing.T) {
	// All mass in one quadrant: with two buckets, one should isolate the
	// hot region reasonably well (its density far above the other's).
	g := grid.NewUnit(16, 16)
	var rects []geom.Rect
	r := rand.New(rand.NewSource(63))
	for k := 0; k < 1000; k++ {
		x, y := r.Float64()*4, r.Float64()*4
		rects = append(rects, geom.NewRect(x, y, x+0.3, y+0.3))
	}
	ms, err := NewMinSkew(g, rects, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := ms.Buckets()
	if len(b) != 2 {
		t.Fatalf("got %d buckets", len(b))
	}
	d0 := float64(b[0].N) / float64(b[0].Region.Cells())
	d1 := float64(b[1].N) / float64(b[1].Region.Cells())
	hi, lo := math.Max(d0, d1), math.Min(d0, d1)
	if hi < 10*(lo+1e-9) {
		t.Fatalf("split did not isolate the hot quadrant: densities %.2f vs %.2f", d0, d1)
	}
}

func TestMinSkewUniformNoSplitNeeded(t *testing.T) {
	// A perfectly uniform surface has zero skew; the builder may stop below
	// the bucket budget rather than split arbitrarily.
	g := grid.NewUnit(8, 8)
	var rects []geom.Rect
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			rects = append(rects, geom.NewRect(float64(i)+0.2, float64(j)+0.2, float64(i)+0.8, float64(j)+0.8))
		}
	}
	ms, err := NewMinSkew(g, rects, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.Intersecting(grid.Span{I1: 0, J1: 0, I2: 7, J2: 7}); math.Abs(got-64) > 1 {
		t.Fatalf("whole-space intersect = %.1f, want ~64", got)
	}
}
