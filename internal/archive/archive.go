// Package archive implements the multi-attribute browsing service the
// paper's GeoBrowsing prototype provides (§1): "users can make queries
// based on various data attributes such as region, date and subject type",
// with every tile of the selected region answered as a COUNT of the
// records matching all the constraints.
//
// Records carry an MBR, a date, and a subject class. The store partitions
// records by (subject, date band) and keeps one Euler histogram per
// non-empty partition; a browsing query with a subject set and a
// band-aligned date range sums per-tile estimates over the selected
// partitions. Band alignment is the temporal mirror of the paper's
// queries-at-resolution principle: answers are exact/approximate at the
// declared resolutions, and finer filters are rejected rather than
// silently approximated.
//
// Storage is #subjects × #bands histograms; with the paper's grid that is
// ~2 MB per non-empty partition, which is why the schema — not the data —
// bounds the footprint.
package archive

import (
	"fmt"
	"math"

	"spatialhist/internal/core"
	"spatialhist/internal/euler"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/query"
)

// Schema fixes the three browsing resolutions: the spatial grid, the
// subject classes, and the date banding.
type Schema struct {
	Grid *grid.Grid
	// Subjects names the subject classes; records refer to them by index.
	Subjects []string
	// DateLo/DateHi bound the archive's time range, split into DateBands
	// equal bands.
	DateLo, DateHi float64
	DateBands      int
}

// Validate reports whether the schema is usable.
func (s Schema) Validate() error {
	if s.Grid == nil {
		return fmt.Errorf("archive: schema needs a grid")
	}
	if len(s.Subjects) == 0 {
		return fmt.Errorf("archive: schema needs at least one subject class")
	}
	if s.DateBands <= 0 {
		return fmt.Errorf("archive: DateBands must be positive, got %d", s.DateBands)
	}
	if !(s.DateLo < s.DateHi) || math.IsNaN(s.DateLo) || math.IsNaN(s.DateHi) {
		return fmt.Errorf("archive: degenerate date range [%g, %g]", s.DateLo, s.DateHi)
	}
	return nil
}

// bandOf returns the band index of a date, or -1 when outside the range.
// The upper bound is inclusive (the last band is closed).
func (s Schema) bandOf(date float64) int {
	if math.IsNaN(date) || date < s.DateLo || date > s.DateHi {
		return -1
	}
	w := (s.DateHi - s.DateLo) / float64(s.DateBands)
	b := int((date - s.DateLo) / w)
	if b == s.DateBands {
		b--
	}
	return b
}

// Record is one archive entry.
type Record struct {
	MBR     geom.Rect
	Date    float64
	Subject int
}

// Builder accumulates records into per-partition histogram builders.
type Builder struct {
	schema  Schema
	parts   []*euler.Builder // subject*bands + band, nil until first record
	skipped int64
}

// NewBuilder validates the schema and returns an empty Builder.
func NewBuilder(schema Schema) (*Builder, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Builder{
		schema: schema,
		parts:  make([]*euler.Builder, len(schema.Subjects)*schema.DateBands),
	}, nil
}

// Add inserts one record. Records outside the spatial extent, outside the
// date range, or with an unknown subject are counted as skipped and
// reported by Build; bad records are data, not bugs.
func (b *Builder) Add(rec Record) bool {
	if rec.Subject < 0 || rec.Subject >= len(b.schema.Subjects) {
		b.skipped++
		return false
	}
	band := b.schema.bandOf(rec.Date)
	if band < 0 {
		b.skipped++
		return false
	}
	idx := rec.Subject*b.schema.DateBands + band
	if b.parts[idx] == nil {
		b.parts[idx] = euler.NewBuilder(b.schema.Grid)
	}
	if !b.parts[idx].Add(rec.MBR) {
		b.skipped++
		return false
	}
	return true
}

// Build finalizes the archive.
func (b *Builder) Build() *Archive {
	a := &Archive{
		schema:  b.schema,
		parts:   make([]*core.Euler, len(b.parts)),
		counts:  make([]int64, len(b.parts)),
		skipped: b.skipped,
	}
	for i, pb := range b.parts {
		if pb == nil {
			continue
		}
		h := pb.Build()
		a.parts[i] = core.NewEuler(h)
		a.counts[i] = h.Count()
		a.total += h.Count()
		a.buckets += h.StorageBuckets()
	}
	return a
}

// Archive answers multi-attribute browsing queries from per-partition
// Euler histograms. Immutable and safe for concurrent queries.
type Archive struct {
	schema  Schema
	parts   []*core.Euler
	counts  []int64
	total   int64
	buckets int
	skipped int64
}

// Schema returns the archive's schema.
func (a *Archive) Schema() Schema { return a.schema }

// Count returns the number of stored records.
func (a *Archive) Count() int64 { return a.total }

// Skipped returns how many records Add rejected.
func (a *Archive) Skipped() int64 { return a.skipped }

// StorageBuckets returns the total histogram buckets across non-empty
// partitions.
func (a *Archive) StorageBuckets() int { return a.buckets }

// PartitionCount returns the record count of one (subject, band) partition.
func (a *Archive) PartitionCount(subject, band int) int64 {
	if subject < 0 || subject >= len(a.schema.Subjects) || band < 0 || band >= a.schema.DateBands {
		panic(fmt.Sprintf("archive: partition (%d,%d) out of range", subject, band))
	}
	return a.counts[subject*a.schema.DateBands+band]
}

// Filter restricts a browsing query to subjects and a date range.
type Filter struct {
	// Subjects selects subject classes by index; nil or empty means all.
	Subjects []int
	// DateFrom and DateTo bound the dates (inclusive); both zero means the
	// whole range. The bounds must align with the schema's band edges.
	DateFrom, DateTo float64
}

// bands resolves the filter to a band range and subject set.
func (a *Archive) resolve(f Filter) (subjects []int, bandLo, bandHi int, err error) {
	s := a.schema
	if len(f.Subjects) == 0 {
		subjects = make([]int, len(s.Subjects))
		for i := range subjects {
			subjects[i] = i
		}
	} else {
		for _, sub := range f.Subjects {
			if sub < 0 || sub >= len(s.Subjects) {
				return nil, 0, 0, fmt.Errorf("archive: unknown subject index %d", sub)
			}
		}
		subjects = f.Subjects
	}
	if f.DateFrom == 0 && f.DateTo == 0 {
		return subjects, 0, s.DateBands - 1, nil
	}
	if !(f.DateFrom < f.DateTo) {
		return nil, 0, 0, fmt.Errorf("archive: empty date range [%g, %g]", f.DateFrom, f.DateTo)
	}
	w := (s.DateHi - s.DateLo) / float64(s.DateBands)
	lo := (f.DateFrom - s.DateLo) / w
	hi := (f.DateTo - s.DateLo) / w
	const tol = 1e-9
	if math.Abs(lo-math.Round(lo)) > tol || math.Abs(hi-math.Round(hi)) > tol {
		return nil, 0, 0, fmt.Errorf("archive: date range [%g, %g] does not align with the %d-band resolution",
			f.DateFrom, f.DateTo, s.DateBands)
	}
	bandLo = int(math.Round(lo))
	bandHi = int(math.Round(hi)) - 1
	if bandLo < 0 || bandHi >= s.DateBands || bandLo > bandHi {
		return nil, 0, 0, fmt.Errorf("archive: date range [%g, %g] outside the archive's [%g, %g]",
			f.DateFrom, f.DateTo, s.DateLo, s.DateHi)
	}
	return subjects, bandLo, bandHi, nil
}

// MatchCount returns how many records match the filter regardless of
// location.
func (a *Archive) MatchCount(f Filter) (int64, error) {
	subjects, bandLo, bandHi, err := a.resolve(f)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, sub := range subjects {
		for band := bandLo; band <= bandHi; band++ {
			n += a.counts[sub*a.schema.DateBands+band]
		}
	}
	return n, nil
}

// Estimate returns the Level 2 counts of the filtered records for one
// grid-aligned tile.
func (a *Archive) Estimate(f Filter, tile grid.Span) (core.Estimate, error) {
	subjects, bandLo, bandHi, err := a.resolve(f)
	if err != nil {
		return core.Estimate{}, err
	}
	return a.estimate(subjects, bandLo, bandHi, tile), nil
}

func (a *Archive) estimate(subjects []int, bandLo, bandHi int, tile grid.Span) core.Estimate {
	var out core.Estimate
	for _, sub := range subjects {
		for band := bandLo; band <= bandHi; band++ {
			p := a.parts[sub*a.schema.DateBands+band]
			if p == nil {
				continue
			}
			e := p.Estimate(tile)
			out.Disjoint += e.Disjoint
			out.Contains += e.Contains
			out.Contained += e.Contained
			out.Overlap += e.Overlap
		}
	}
	return out
}

// Browse answers a full browsing interaction: the filtered records against
// every tile of a cols×rows tiling of the region (row-major from the
// south-west). Each selected partition contributes one batch sweep of its
// histogram (core.BatchEstimator) instead of per-tile lookups, so the cost
// is O(partitions × tiles) additions over O(1)-gathered corner sums.
func (a *Archive) Browse(f Filter, region grid.Span, cols, rows int) ([]core.Estimate, error) {
	subjects, bandLo, bandHi, err := a.resolve(f)
	if err != nil {
		return nil, err
	}
	if _, _, err := query.Tiling(region, cols, rows); err != nil {
		return nil, err
	}
	out := make([]core.Estimate, cols*rows)
	for _, sub := range subjects {
		for band := bandLo; band <= bandHi; band++ {
			p := a.parts[sub*a.schema.DateBands+band]
			if p == nil {
				continue
			}
			part, err := p.EstimateGrid(region, cols, rows)
			if err != nil {
				return nil, err
			}
			for k, e := range part {
				out[k].Disjoint += e.Disjoint
				out[k].Contains += e.Contains
				out[k].Contained += e.Contained
				out[k].Overlap += e.Overlap
			}
		}
	}
	return out, nil
}
