package archive

import (
	"math/rand"
	"testing"

	"spatialhist/internal/check/gen"
	"spatialhist/internal/exact"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
)

func testSchema() Schema {
	return Schema{
		Grid:      grid.NewUnit(40, 20),
		Subjects:  []string{"map", "photo", "gazetteer"},
		DateLo:    1900,
		DateHi:    2000,
		DateBands: 10,
	}
}

func TestSchemaValidate(t *testing.T) {
	ok := testSchema()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Subjects: []string{"x"}, DateLo: 0, DateHi: 1, DateBands: 1},                // no grid
		{Grid: ok.Grid, DateLo: 0, DateHi: 1, DateBands: 1},                          // no subjects
		{Grid: ok.Grid, Subjects: []string{"x"}, DateLo: 0, DateHi: 1, DateBands: 0}, // no bands
		{Grid: ok.Grid, Subjects: []string{"x"}, DateLo: 5, DateHi: 5, DateBands: 2}, // empty range
	}
	for i, s := range bad {
		if _, err := NewBuilder(s); err == nil {
			t.Errorf("schema %d: must error", i)
		}
	}
}

func TestBandOf(t *testing.T) {
	s := testSchema()
	cases := []struct {
		date float64
		want int
	}{
		{1900, 0}, {1909.99, 0}, {1910, 1}, {1955, 5}, {1999.9, 9},
		{2000, 9}, // inclusive upper bound joins the last band
		{1899.9, -1}, {2000.1, -1},
	}
	for _, c := range cases {
		if got := s.bandOf(c.date); got != c.want {
			t.Errorf("bandOf(%g) = %d, want %d", c.date, got, c.want)
		}
	}
}

// genRecords produces a deterministic mixed archive.
func genRecords(r *rand.Rand, n int) []Record {
	out := make([]Record, 0, n)
	for len(out) < n {
		x, y := r.Float64()*38, r.Float64()*18
		var w, h float64
		if r.Intn(10) == 0 {
			w, h = 3+r.Float64()*12, 2+r.Float64()*8 // occasional big map
		} else {
			w, h = r.Float64(), r.Float64()
		}
		out = append(out, Record{
			MBR:     geom.NewRect(x, y, x+w, y+h),
			Date:    1900 + r.Float64()*100,
			Subject: r.Intn(3),
		})
	}
	return out
}

func buildArchive(t *testing.T, recs []Record) *Archive {
	t.Helper()
	b, err := NewBuilder(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		b.Add(rec)
	}
	return b.Build()
}

func TestAddSkipsBadRecords(t *testing.T) {
	b, err := NewBuilder(testSchema())
	if err != nil {
		t.Fatal(err)
	}
	good := Record{MBR: geom.NewRect(1, 1, 2, 2), Date: 1950, Subject: 0}
	if !b.Add(good) {
		t.Fatal("good record rejected")
	}
	bad := []Record{
		{MBR: geom.NewRect(1, 1, 2, 2), Date: 1850, Subject: 0},         // date out of range
		{MBR: geom.NewRect(1, 1, 2, 2), Date: 1950, Subject: 9},         // unknown subject
		{MBR: geom.NewRect(1, 1, 2, 2), Date: 1950, Subject: -1},        // negative subject
		{MBR: geom.NewRect(100, 100, 110, 110), Date: 1950, Subject: 0}, // outside space
	}
	for i, rec := range bad {
		if b.Add(rec) {
			t.Errorf("bad record %d accepted", i)
		}
	}
	a := b.Build()
	if a.Count() != 1 || a.Skipped() != int64(len(bad)) {
		t.Fatalf("Count/Skipped = %d/%d", a.Count(), a.Skipped())
	}
}

func TestFilteredBrowseMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	recs := genRecords(r, 5000)
	a := buildArchive(t, recs)
	if a.Count() != 5000 {
		t.Fatalf("Count = %d (skipped %d)", a.Count(), a.Skipped())
	}
	g := a.Schema().Grid

	filters := []Filter{
		{},                             // everything
		{Subjects: []int{1}},           // photos only
		{DateFrom: 1950, DateTo: 1980}, // three bands
		{Subjects: []int{0, 2}, DateFrom: 1900, DateTo: 1910},
	}
	region := grid.Span{I1: 0, J1: 0, I2: 39, J2: 19}
	for fi, f := range filters {
		got, err := a.Browse(f, region, 8, 4)
		if err != nil {
			t.Fatalf("filter %d: %v", fi, err)
		}
		// Brute force: snap the matching records, classify per tile.
		matching := make([]grid.Span, 0)
		for _, rec := range recs {
			if !matchBrute(a.Schema(), f, rec) {
				continue
			}
			if s, ok := g.Snap(rec.MBR); ok {
				matching = append(matching, s)
			}
		}
		n, err := a.MatchCount(f)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(matching)) {
			t.Fatalf("filter %d: MatchCount = %d, want %d", fi, n, len(matching))
		}
		tiles := gen.Tiles(region, 8, 4)
		for k, tile := range tiles {
			want := exact.EvaluateQuery(matching, tile)
			e := got[k]
			// EulerApprox per partition: disjoint exact, totals exact, the
			// split approximate. The mostly-small records keep it tight;
			// assert exactness of the invariant parts and closeness of the
			// rest.
			if e.Disjoint != want.Disjoint {
				t.Fatalf("filter %d tile %d: N_d = %d, want %d", fi, k, e.Disjoint, want.Disjoint)
			}
			if e.Total() != want.Total() {
				t.Fatalf("filter %d tile %d: total %d, want %d", fi, k, e.Total(), want.Total())
			}
			if d := e.Contains - want.Contains; d < -40 || d > 40 {
				t.Fatalf("filter %d tile %d: N_cs %d vs exact %d", fi, k, e.Contains, want.Contains)
			}
		}
	}
}

func matchBrute(s Schema, f Filter, rec Record) bool {
	if len(f.Subjects) > 0 {
		found := false
		for _, sub := range f.Subjects {
			if rec.Subject == sub {
				found = true
			}
		}
		if !found {
			return false
		}
	}
	if f.DateFrom == 0 && f.DateTo == 0 {
		return true
	}
	band := s.bandOf(rec.Date)
	w := (s.DateHi - s.DateLo) / float64(s.DateBands)
	lo := int((f.DateFrom - s.DateLo) / w)
	hi := int((f.DateTo-s.DateLo)/w) - 1
	return band >= lo && band <= hi
}

func TestFilterValidation(t *testing.T) {
	a := buildArchive(t, genRecords(rand.New(rand.NewSource(3)), 100))
	region := grid.Span{I1: 0, J1: 0, I2: 39, J2: 19}
	bad := []Filter{
		{Subjects: []int{7}},           // unknown subject
		{DateFrom: 1955, DateTo: 1965}, // misaligned bands
		{DateFrom: 1960, DateTo: 1950}, // inverted
		{DateFrom: 1850, DateTo: 1900}, // outside range
	}
	for i, f := range bad {
		if _, err := a.Browse(f, region, 4, 2); err == nil {
			t.Errorf("filter %d must error", i)
		}
		if _, err := a.MatchCount(f); err == nil {
			t.Errorf("filter %d MatchCount must error", i)
		}
		if _, err := a.Estimate(f, region); err == nil {
			t.Errorf("filter %d Estimate must error", i)
		}
	}
	if _, err := a.Browse(Filter{}, region, 7, 2); err == nil {
		t.Error("non-dividing tiling must error")
	}
}

func TestPartitionCount(t *testing.T) {
	recs := []Record{
		{MBR: geom.NewRect(1, 1, 2, 2), Date: 1905, Subject: 0},
		{MBR: geom.NewRect(1, 1, 2, 2), Date: 1906, Subject: 0},
		{MBR: geom.NewRect(1, 1, 2, 2), Date: 1995, Subject: 2},
	}
	a := buildArchive(t, recs)
	if a.PartitionCount(0, 0) != 2 || a.PartitionCount(2, 9) != 1 || a.PartitionCount(1, 5) != 0 {
		t.Fatalf("partition counts wrong")
	}
	if a.StorageBuckets() == 0 {
		t.Fatal("storage accounting missing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range partition must panic")
		}
	}()
	a.PartitionCount(5, 0)
}
