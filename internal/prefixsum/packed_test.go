package prefixsum

import (
	"math"
	"math/rand"
	"testing"
)

func TestPackSum2DMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range [][2]int{{1, 1}, {5, 9}, {64, 64}, {130, 70}, {200, 257}} {
		nx, ny := dim[0], dim[1]
		src := randArray(rng, nx*ny)
		flat := NewSum2D(src, nx, ny)
		packed, ok := PackSum2D(flat)
		if !ok {
			t.Fatalf("%dx%d: pack failed on small values", nx, ny)
		}
		if packed.NX() != nx || packed.NY() != ny {
			t.Fatalf("dimensions %dx%d, want %dx%d", packed.NX(), packed.NY(), nx, ny)
		}
		if packed.Total() != flat.Total() {
			t.Fatalf("Total = %d, want %d", packed.Total(), flat.Total())
		}
		if packed.Bytes() != 4*nx*ny {
			t.Fatalf("Bytes = %d, want %d", packed.Bytes(), 4*nx*ny)
		}
		for trial := 0; trial < 300; trial++ {
			i1, j1 := rng.Intn(nx)-1, rng.Intn(ny)-1
			i2, j2 := i1+rng.Intn(nx+2), j1+rng.Intn(ny+2)
			if got, want := packed.RangeSum(i1, j1, i2, j2), flat.RangeSum(i1, j1, i2, j2); got != want {
				t.Fatalf("RangeSum(%d,%d,%d,%d) = %d, want %d", i1, j1, i2, j2, got, want)
			}
			if got, want := packed.PrefixAt(i2, j2), flat.PrefixAt(i2, j2); got != want {
				t.Fatalf("PrefixAt(%d,%d) = %d, want %d", i2, j2, got, want)
			}
		}
		// Row conventions match the flat plane's.
		if packed.Row(-1) != nil {
			t.Fatal("Row(-1) should be nil")
		}
		over := packed.Row(nx + 5)
		for j, v := range flat.Row(nx + 5) {
			if int64(over[j]) != v {
				t.Fatalf("clamped Row[%d] = %d, want %d", j, over[j], v)
			}
		}
		assertEqualSum2D(t, flat, packed.Unpack())
	}
}

func TestPackSum2DRefusesOverflow(t *testing.T) {
	for _, v := range []int64{math.MaxInt32 + 1, math.MinInt32 - 1} {
		s := NewSum2D([]int64{v, 0, 0, 0}, 2, 2)
		if p, ok := PackSum2D(s); ok || p != nil {
			t.Fatalf("pack of prefix value %d should fail", v)
		}
	}
	// The extreme representable values still pack exactly.
	s := NewSum2D([]int64{math.MaxInt32, math.MinInt32 - math.MaxInt32}, 2, 1)
	p, ok := PackSum2D(s)
	if !ok {
		t.Fatal("pack of int32-representable prefixes should succeed")
	}
	if p.PrefixAt(0, 0) != math.MaxInt32 || p.PrefixAt(1, 0) != math.MinInt32 {
		t.Fatalf("extreme prefixes corrupted: %d, %d", p.PrefixAt(0, 0), p.PrefixAt(1, 0))
	}
}

func TestCloneInto(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	nx, ny := 40, 30
	s := NewSum2D(randArray(rng, nx*ny), nx, ny)

	// Matching buffer: reused in place, content identical.
	dst := NewSum2D(randArray(rng, nx*ny), nx, ny)
	p0 := &dst.p[0]
	got := s.CloneInto(dst)
	if got != dst || &got.p[0] != p0 {
		t.Fatal("CloneInto did not reuse the destination buffer")
	}
	assertEqualSum2D(t, s, got)

	// The clone is independent of the source.
	got.p[0]++
	if s.p[0] == got.p[0] {
		t.Fatal("CloneInto aliased the source buffer")
	}

	// nil, self and mismatched destinations fall back to a fresh clone.
	for name, dst := range map[string]*Sum2D{
		"nil":      nil,
		"self":     s,
		"mismatch": NewSum2D(make([]int64, 6), 2, 3),
	} {
		got := s.CloneInto(dst)
		if got == s {
			t.Fatalf("%s: CloneInto returned the source", name)
		}
		assertEqualSum2D(t, s, got)
		got.p[0]++
		if s.p[0] == got.p[0] {
			t.Fatalf("%s: fallback clone aliased the source", name)
		}
	}
}
