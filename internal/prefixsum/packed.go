package prefixsum

import "math"

// Sum2DPacked is the int32-packed form of a Sum2D: the same prefix values
// at half the bytes. Packing is exact, not lossy — it exists only when
// every prefix value fits int32, which PackSum2D verifies, so every range
// sum assembled from a packed plane (widened to int64 before combining) is
// bit-identical to the flat form's.
//
// For the Euler-histogram cumulative lattice the fit condition reduces to
// the dataset size: each object contributes 0 or 1 to any lattice-rectangle
// prefix (its per-axis signed interval sums telescope to {0,1}), so every
// prefix value lies in [0, n] and a dataset of at most MaxInt32 objects
// always packs. Promotion back to int64 is Unpack; a packed plane itself is
// immutable, so overflow can only be introduced at (re)pack time, where it
// is checked.
type Sum2DPacked struct {
	nx, ny int
	p      []int32
}

// PackSum2D packs a flat prefix plane to int32. ok is false — and the
// packed plane nil — when any prefix value overflows int32; callers then
// stay on (or promote to) the int64 form.
func PackSum2D(s *Sum2D) (*Sum2DPacked, bool) {
	p := make([]int32, len(s.p))
	for i, v := range s.p {
		if v > math.MaxInt32 || v < math.MinInt32 {
			return nil, false
		}
		p[i] = int32(v)
	}
	return &Sum2DPacked{nx: s.nx, ny: s.ny, p: p}, true
}

// Unpack promotes the packed plane back to the flat int64 form — the
// checked promotion path when a dataset outgrows the packed tier.
func (s *Sum2DPacked) Unpack() *Sum2D {
	p := make([]int64, len(s.p))
	for i, v := range s.p {
		p[i] = int64(v)
	}
	return &Sum2D{nx: s.nx, ny: s.ny, p: p}
}

// NX returns the first dimension size.
func (s *Sum2DPacked) NX() int { return s.nx }

// NY returns the second dimension size.
func (s *Sum2DPacked) NY() int { return s.ny }

// Bytes returns the payload size of the packed plane.
func (s *Sum2DPacked) Bytes() int { return 4 * len(s.p) }

// Total returns the sum of the whole array.
func (s *Sum2DPacked) Total() int64 {
	if s.nx == 0 || s.ny == 0 {
		return 0
	}
	return int64(s.p[s.nx*s.ny-1])
}

// at returns P(i,j) with the convention P(-1,·) = P(·,-1) = 0.
func (s *Sum2DPacked) at(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	return int64(s.p[i*s.ny+j])
}

// PrefixAt returns the prefix value P(i, j) with Sum2D.PrefixAt's boundary
// conventions: negative coordinates yield 0, overshoot clamps.
func (s *Sum2DPacked) PrefixAt(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	if i >= s.nx {
		i = s.nx - 1
	}
	if j >= s.ny {
		j = s.ny - 1
	}
	return int64(s.p[i*s.ny+j])
}

// Row returns the packed prefix row P(i, ·) with Sum2D.Row's conventions:
// overshoot clamps, a negative coordinate returns nil. Batch kernels widen
// the values to int64 as they gather, so sums assembled from packed rows
// are bit-identical to the flat path's.
func (s *Sum2DPacked) Row(i int) []int32 {
	if i < 0 {
		return nil
	}
	if i >= s.nx {
		i = s.nx - 1
	}
	return s.p[i*s.ny : (i+1)*s.ny]
}

// RangeSum returns the sum of src over the inclusive range
// [i1..i2]×[j1..j2], clamped like Sum2D.RangeSum. The four corners are
// widened to int64 before combining, so the result is bit-identical to the
// flat form's (each corner is the same value, and the combination is the
// same int64 arithmetic).
func (s *Sum2DPacked) RangeSum(i1, j1, i2, j2 int) int64 {
	if i1 < 0 {
		i1 = 0
	}
	if j1 < 0 {
		j1 = 0
	}
	if i2 >= s.nx {
		i2 = s.nx - 1
	}
	if j2 >= s.ny {
		j2 = s.ny - 1
	}
	if i1 > i2 || j1 > j2 {
		return 0
	}
	return s.at(i2, j2) - s.at(i1-1, j2) - s.at(i2, j1-1) + s.at(i1-1, j1-1)
}
