// Package prefixsum implements the prefix-sum data cube of Ho, Agrawal,
// Megiddo and Srikant (SIGMOD'97), the aggregation technique the paper
// builds its cumulative histograms on (§5.2): after an O(size)
// precomputation, the sum over any axis-aligned range of an array is
// answered in constant time (2^d lookups for d dimensions).
//
// Sum2D is the specialized 2-d form used by the Euler histograms; Cube is
// the general d-dimensional form used to realize the "rectangles as 4-d
// points" exact alternative discussed in §2 of the paper.
package prefixsum

import "fmt"

// Sum2D is a 2-d prefix-sum array: P[i][j] = sum of src[0..i][0..j].
// It answers inclusive rectangular range sums in constant time.
type Sum2D struct {
	nx, ny int
	p      []int64 // (nx)x(ny), row-major: p[i*ny+j]
}

// NewSum2D builds the prefix sums of an nx×ny row-major array. The source
// slice must have exactly nx*ny entries.
func NewSum2D(src []int64, nx, ny int) *Sum2D {
	if nx < 0 || ny < 0 || len(src) != nx*ny {
		panic(fmt.Sprintf("prefixsum: source length %d does not match %dx%d", len(src), nx, ny))
	}
	p := make([]int64, nx*ny)
	copy(p, src)
	// Prefix along y within each row.
	for i := 0; i < nx; i++ {
		row := p[i*ny : (i+1)*ny]
		for j := 1; j < ny; j++ {
			row[j] += row[j-1]
		}
	}
	// Prefix along x across rows.
	for i := 1; i < nx; i++ {
		prev := p[(i-1)*ny : i*ny]
		row := p[i*ny : (i+1)*ny]
		for j := 0; j < ny; j++ {
			row[j] += prev[j]
		}
	}
	return &Sum2D{nx: nx, ny: ny, p: p}
}

// NX returns the first dimension size.
func (s *Sum2D) NX() int { return s.nx }

// NY returns the second dimension size.
func (s *Sum2D) NY() int { return s.ny }

// Total returns the sum of the whole array.
func (s *Sum2D) Total() int64 {
	if s.nx == 0 || s.ny == 0 {
		return 0
	}
	return s.p[s.nx*s.ny-1]
}

// at returns P(i,j) with the convention P(-1,·) = P(·,-1) = 0.
func (s *Sum2D) at(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	return s.p[i*s.ny+j]
}

// PrefixAt returns the prefix value P(i, j) = Σ src[0..i][0..j] with the
// same boundary conventions RangeSum applies to its corners: negative
// coordinates yield 0 and coordinates past the array edge are clamped to
// it. It lets batch kernels gather the corner values of many ranges once
// and reuse them, instead of paying four at() lookups per range.
func (s *Sum2D) PrefixAt(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	if i >= s.nx {
		i = s.nx - 1
	}
	if j >= s.ny {
		j = s.ny - 1
	}
	return s.p[i*s.ny+j]
}

// Row returns the prefix row P(i, ·) as a read-only slice, applying the
// same boundary conventions PrefixAt applies to i: a coordinate past the
// array edge is clamped to it and a negative coordinate returns nil (every
// prefix value of a negative row is zero). Batch kernels use it to hoist
// the row lookup and clamping out of their per-corner gather loops.
func (s *Sum2D) Row(i int) []int64 {
	if i < 0 {
		return nil
	}
	if i >= s.nx {
		i = s.nx - 1
	}
	return s.p[i*s.ny : (i+1)*s.ny]
}

// RangeSum returns the sum of src over the inclusive range
// [i1..i2]×[j1..j2]. Ranges are clamped to the array; an inverted or fully
// outside range sums to zero, which lets callers pass empty regions (e.g. a
// region A side rectangle of width zero) without special-casing.
func (s *Sum2D) RangeSum(i1, j1, i2, j2 int) int64 {
	if i1 < 0 {
		i1 = 0
	}
	if j1 < 0 {
		j1 = 0
	}
	if i2 >= s.nx {
		i2 = s.nx - 1
	}
	if j2 >= s.ny {
		j2 = s.ny - 1
	}
	if i1 > i2 || j1 > j2 {
		return 0
	}
	return s.at(i2, j2) - s.at(i1-1, j2) - s.at(i2, j1-1) + s.at(i1-1, j1-1)
}
