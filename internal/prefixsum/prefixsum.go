// Package prefixsum implements the prefix-sum data cube of Ho, Agrawal,
// Megiddo and Srikant (SIGMOD'97), the aggregation technique the paper
// builds its cumulative histograms on (§5.2): after an O(size)
// precomputation, the sum over any axis-aligned range of an array is
// answered in constant time (2^d lookups for d dimensions).
//
// Sum2D is the specialized 2-d form used by the Euler histograms; Cube is
// the general d-dimensional form used to realize the "rectangles as 4-d
// points" exact alternative discussed in §2 of the paper.
package prefixsum

import (
	"fmt"
	"sync"
)

// Sum2D is a 2-d prefix-sum array: P[i][j] = sum of src[0..i][0..j].
// It answers inclusive rectangular range sums in constant time.
type Sum2D struct {
	nx, ny int
	p      []int64 // (nx)x(ny), row-major: p[i*ny+j]
}

// NewSum2D builds the prefix sums of an nx×ny row-major array. The source
// slice must have exactly nx*ny entries.
func NewSum2D(src []int64, nx, ny int) *Sum2D {
	return NewSum2DParallel(src, nx, ny, 1)
}

// NewSum2DParallel builds the prefix sums of an nx×ny row-major array
// fanning the two passes across up to workers goroutines. The result is
// bit-identical to NewSum2D (integer addition commutes); workers <= 1 is
// the serial path.
func NewSum2DParallel(src []int64, nx, ny, workers int) *Sum2D {
	if nx < 0 || ny < 0 || len(src) != nx*ny {
		panic(fmt.Sprintf("prefixsum: source length %d does not match %dx%d", len(src), nx, ny))
	}
	s := &Sum2D{nx: nx, ny: ny, p: make([]int64, nx*ny)}
	s.fill(src, workers)
	return s
}

// Rebuild recomputes the prefix array in place from a fresh source of the
// same dimensions, reusing the existing buffer — the full-rebuild path of
// generation recycling, which must not allocate O(nx·ny) per publish.
func (s *Sum2D) Rebuild(src []int64, workers int) {
	if len(src) != len(s.p) {
		panic(fmt.Sprintf("prefixsum: rebuild source length %d does not match %dx%d", len(src), s.nx, s.ny))
	}
	s.fill(src, workers)
}

// Clone returns an independent copy, the donor for copy-then-repair
// incremental maintenance when no recycled buffer is available.
func (s *Sum2D) Clone() *Sum2D {
	p := make([]int64, len(s.p))
	copy(p, s.p)
	return &Sum2D{nx: s.nx, ny: s.ny, p: p}
}

// CloneInto copies s into dst's buffer and returns dst, falling back to a
// fresh Clone when dst is nil or its buffer has the wrong size. It is the
// allocation-free sibling of Clone for callers holding a recycled buffer of
// the same dimensions — a donated arena lease whose content is unrelated
// but whose storage is reusable.
func (s *Sum2D) CloneInto(dst *Sum2D) *Sum2D {
	if dst == nil || dst == s || len(dst.p) != len(s.p) {
		return s.Clone()
	}
	dst.nx, dst.ny = s.nx, s.ny
	copy(dst.p, s.p)
	return dst
}

// fill computes the two prefix passes over src into s.p. Pass one (prefix
// along y) is independent per row; pass two (prefix along x) is
// independent per column, so each parallelizes over disjoint chunks.
func (s *Sum2D) fill(src []int64, workers int) {
	nx, ny, p := s.nx, s.ny, s.p
	if workers <= 1 || nx*ny < 1<<16 {
		copy(p, src)
		for i := 0; i < nx; i++ {
			row := p[i*ny : (i+1)*ny]
			for j := 1; j < ny; j++ {
				row[j] += row[j-1]
			}
		}
		for i := 1; i < nx; i++ {
			prev := p[(i-1)*ny : i*ny]
			row := p[i*ny : (i+1)*ny]
			for j := 0; j < ny; j++ {
				row[j] += prev[j]
			}
		}
		return
	}
	fanChunks(nx, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := p[i*ny : (i+1)*ny]
			copy(row, src[i*ny:(i+1)*ny])
			for j := 1; j < ny; j++ {
				row[j] += row[j-1]
			}
		}
	})
	fanChunks(ny, workers, func(jlo, jhi int) {
		for i := 1; i < nx; i++ {
			prev := p[(i-1)*ny : i*ny]
			row := p[i*ny : (i+1)*ny]
			for j := jlo; j < jhi; j++ {
				row[j] += prev[j]
			}
		}
	})
}

// fanChunks splits [0, n) into up to workers contiguous chunks and runs fn
// on each concurrently.
func fanChunks(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AddRegionDelta repairs the prefix array in place after the source
// changed only inside the inclusive box [u1..u2]×[v1..v2]. delta is the
// row-major (u2−u1+1)×(v2−v1+1) array of per-cell source changes (new −
// old); it is consumed (overwritten with its own 2-d prefix).
//
// The repair exploits the structure of the prefix delta ΔP: inside the box
// it is the local 2-d prefix of delta; below the box it is constant per
// column (the box column totals); right of the box it is constant per row;
// and in the lower-right quadrant it is one constant c = the box total.
// Cost is O(box + strips) plus — only when c ≠ 0, i.e. the source total
// changed — a single-constant add over the quadrant. For churn whose
// inserts and deletes balance (the common live-update shape) c is zero and
// the quadrant is untouched, which is what makes repair cost track the
// dirty region instead of the array size.
func (s *Sum2D) AddRegionDelta(u1, v1, u2, v2 int, delta []int64) {
	if u1 < 0 || v1 < 0 || u1 > u2 || v1 > v2 || u2 >= s.nx || v2 >= s.ny {
		panic(fmt.Sprintf("prefixsum: delta box [%d..%d]x[%d..%d] outside %dx%d", u1, u2, v1, v2, s.nx, s.ny))
	}
	bw := v2 - v1 + 1
	bh := u2 - u1 + 1
	if len(delta) != bh*bw {
		panic(fmt.Sprintf("prefixsum: delta length %d does not match %dx%d box", len(delta), bh, bw))
	}
	// In-place local 2-d prefix of the delta box.
	for i := 0; i < bh; i++ {
		row := delta[i*bw : (i+1)*bw]
		for j := 1; j < bw; j++ {
			row[j] += row[j-1]
		}
		if i > 0 {
			prev := delta[(i-1)*bw : i*bw]
			for j, v := range prev {
				row[j] += v
			}
		}
	}
	// Box rows: local prefix inside the box, then the row's box total over
	// the tail to the right edge.
	for u := u1; u <= u2; u++ {
		drow := delta[(u-u1)*bw : (u-u1+1)*bw]
		prow := s.p[u*s.ny : (u+1)*s.ny]
		for j, v := range drow {
			prow[v1+j] += v
		}
		if tail := drow[bw-1]; tail != 0 {
			for v := v2 + 1; v < s.ny; v++ {
				prow[v] += tail
			}
		}
	}
	// Rows below the box: the box column totals, then the box total c over
	// the quadrant (skipped entirely when the source total is unchanged).
	colDelta := delta[(bh-1)*bw : bh*bw]
	c := colDelta[bw-1]
	for u := u2 + 1; u < s.nx; u++ {
		prow := s.p[u*s.ny : (u+1)*s.ny]
		for j, v := range colDelta {
			prow[v1+j] += v
		}
		if c != 0 {
			for v := v2 + 1; v < s.ny; v++ {
				prow[v] += c
			}
		}
	}
}

// NX returns the first dimension size.
func (s *Sum2D) NX() int { return s.nx }

// NY returns the second dimension size.
func (s *Sum2D) NY() int { return s.ny }

// Total returns the sum of the whole array.
func (s *Sum2D) Total() int64 {
	if s.nx == 0 || s.ny == 0 {
		return 0
	}
	return s.p[s.nx*s.ny-1]
}

// at returns P(i,j) with the convention P(-1,·) = P(·,-1) = 0.
func (s *Sum2D) at(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	return s.p[i*s.ny+j]
}

// PrefixAt returns the prefix value P(i, j) = Σ src[0..i][0..j] with the
// same boundary conventions RangeSum applies to its corners: negative
// coordinates yield 0 and coordinates past the array edge are clamped to
// it. It lets batch kernels gather the corner values of many ranges once
// and reuse them, instead of paying four at() lookups per range.
func (s *Sum2D) PrefixAt(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	if i >= s.nx {
		i = s.nx - 1
	}
	if j >= s.ny {
		j = s.ny - 1
	}
	return s.p[i*s.ny+j]
}

// Row returns the prefix row P(i, ·) as a read-only slice, applying the
// same boundary conventions PrefixAt applies to i: a coordinate past the
// array edge is clamped to it and a negative coordinate returns nil (every
// prefix value of a negative row is zero). Batch kernels use it to hoist
// the row lookup and clamping out of their per-corner gather loops.
func (s *Sum2D) Row(i int) []int64 {
	if i < 0 {
		return nil
	}
	if i >= s.nx {
		i = s.nx - 1
	}
	return s.p[i*s.ny : (i+1)*s.ny]
}

// RangeSum returns the sum of src over the inclusive range
// [i1..i2]×[j1..j2]. Ranges are clamped to the array; an inverted or fully
// outside range sums to zero, which lets callers pass empty regions (e.g. a
// region A side rectangle of width zero) without special-casing.
func (s *Sum2D) RangeSum(i1, j1, i2, j2 int) int64 {
	if i1 < 0 {
		i1 = 0
	}
	if j1 < 0 {
		j1 = 0
	}
	if i2 >= s.nx {
		i2 = s.nx - 1
	}
	if j2 >= s.ny {
		j2 = s.ny - 1
	}
	if i1 > i2 || j1 > j2 {
		return 0
	}
	return s.at(i2, j2) - s.at(i1-1, j2) - s.at(i2, j1-1) + s.at(i1-1, j1-1)
}
