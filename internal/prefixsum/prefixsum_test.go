package prefixsum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveSum2D(src []int64, nx, ny, i1, j1, i2, j2 int) int64 {
	var s int64
	for i := max(i1, 0); i <= min(i2, nx-1); i++ {
		for j := max(j1, 0); j <= min(j2, ny-1); j++ {
			s += src[i*ny+j]
		}
	}
	return s
}

func TestSum2DSmall(t *testing.T) {
	src := []int64{
		1, 2, 3,
		4, 5, 6,
	}
	s := NewSum2D(src, 2, 3)
	if s.NX() != 2 || s.NY() != 3 {
		t.Fatalf("dims wrong")
	}
	if got := s.Total(); got != 21 {
		t.Fatalf("Total = %d, want 21", got)
	}
	cases := []struct {
		i1, j1, i2, j2 int
		want           int64
	}{
		{0, 0, 1, 2, 21},
		{0, 0, 0, 0, 1},
		{1, 1, 1, 2, 11},
		{0, 1, 1, 1, 7},
		{1, 0, 0, 0, 0},      // inverted
		{-5, -5, 10, 10, 21}, // clamped
		{2, 0, 3, 2, 0},      // fully outside
	}
	for _, c := range cases {
		if got := s.RangeSum(c.i1, c.j1, c.i2, c.j2); got != c.want {
			t.Errorf("RangeSum(%d,%d,%d,%d) = %d, want %d", c.i1, c.j1, c.i2, c.j2, got, c.want)
		}
	}
}

func TestSum2DPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSum2D with mismatched length must panic")
		}
	}()
	NewSum2D(make([]int64, 5), 2, 3)
}

func TestSum2DEmpty(t *testing.T) {
	s := NewSum2D(nil, 0, 0)
	if s.Total() != 0 || s.RangeSum(0, 0, 10, 10) != 0 {
		t.Fatal("empty Sum2D must be all zeros")
	}
}

func TestSum2DQuickAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const nx, ny = 13, 9
	src := make([]int64, nx*ny)
	for i := range src {
		src[i] = int64(r.Intn(21) - 10) // negatives matter: Euler edges are negative
	}
	s := NewSum2D(src, nx, ny)
	f := func() bool {
		i1, j1 := r.Intn(nx+4)-2, r.Intn(ny+4)-2
		i2, j2 := r.Intn(nx+4)-2, r.Intn(ny+4)-2
		return s.RangeSum(i1, j1, i2, j2) == naiveSum2D(src, nx, ny, i1, j1, i2, j2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func naiveCubeSum(src []int64, dims, lo, hi []int) int64 {
	d := len(dims)
	strides := make([]int, d)
	stride := 1
	for k := d - 1; k >= 0; k-- {
		strides[k] = stride
		stride *= dims[k]
	}
	var sum int64
	coord := make([]int, d)
	for k := 0; k < d; k++ {
		coord[k] = max(lo[k], 0)
		if coord[k] > min(hi[k], dims[k]-1) {
			return 0
		}
	}
	for {
		idx := 0
		for k := 0; k < d; k++ {
			idx += coord[k] * strides[k]
		}
		sum += src[idx]
		k := d - 1
		for k >= 0 {
			coord[k]++
			if coord[k] <= min(hi[k], dims[k]-1) {
				break
			}
			coord[k] = max(lo[k], 0)
			k--
		}
		if k < 0 {
			return sum
		}
	}
}

func TestCube1DMatchesPrefix(t *testing.T) {
	src := []int64{3, 1, 4, 1, 5}
	c := NewCube(src, []int{5})
	if c.Total() != 14 {
		t.Fatalf("Total = %d, want 14", c.Total())
	}
	if got := c.RangeSum([]int{1}, []int{3}); got != 6 {
		t.Fatalf("RangeSum[1..3] = %d, want 6", got)
	}
}

func TestCube2DMatchesSum2D(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	const nx, ny = 7, 11
	src := make([]int64, nx*ny)
	for i := range src {
		src[i] = int64(r.Intn(9) - 4)
	}
	s2 := NewSum2D(src, nx, ny)
	c := NewCube(src, []int{nx, ny})
	for trial := 0; trial < 1000; trial++ {
		i1, j1 := r.Intn(nx), r.Intn(ny)
		i2, j2 := i1+r.Intn(nx-i1), j1+r.Intn(ny-j1)
		a := s2.RangeSum(i1, j1, i2, j2)
		b := c.RangeSum([]int{i1, j1}, []int{i2, j2})
		if a != b {
			t.Fatalf("Cube/Sum2D disagree at (%d,%d,%d,%d): %d vs %d", i1, j1, i2, j2, a, b)
		}
	}
}

func TestCube4DAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	dims := []int{4, 3, 5, 2}
	size := 4 * 3 * 5 * 2
	src := make([]int64, size)
	for i := range src {
		src[i] = int64(r.Intn(7) - 3)
	}
	c := NewCube(src, dims)
	if got, want := c.Size(), size; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for trial := 0; trial < 2000; trial++ {
		lo := make([]int, 4)
		hi := make([]int, 4)
		for k := range dims {
			lo[k] = r.Intn(dims[k]+2) - 1
			hi[k] = r.Intn(dims[k]+2) - 1
		}
		got := c.RangeSum(lo, hi)
		want := naiveCubeSum(src, dims, lo, hi)
		if got != want {
			t.Fatalf("RangeSum(%v,%v) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestCubePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad dims":   func() { NewCube(make([]int64, 4), []int{2, 3}) },
		"zero dim":   func() { NewCube(nil, []int{0}) },
		"rank error": func() { NewCube(make([]int64, 4), []int{2, 2}).RangeSum([]int{0}, []int{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: must panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCubeDims(t *testing.T) {
	c := NewCube(make([]int64, 6), []int{2, 3})
	d := c.Dims()
	d[0] = 99 // mutation must not leak into the cube
	if got := c.Dims(); got[0] != 2 || got[1] != 3 {
		t.Fatalf("Dims leaked mutation: %v", got)
	}
}
