package prefixsum

import (
	"math/rand"
	"testing"
)

func randArray(rng *rand.Rand, n int) []int64 {
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(21) - 10)
	}
	return a
}

func assertEqualSum2D(t *testing.T, want, got *Sum2D) {
	t.Helper()
	if want.nx != got.nx || want.ny != got.ny {
		t.Fatalf("dimensions differ: %dx%d vs %dx%d", want.nx, want.ny, got.nx, got.ny)
	}
	for i, v := range want.p {
		if got.p[i] != v {
			t.Fatalf("prefix[%d] = %d, want %d", i, got.p[i], v)
		}
	}
}

func TestNewSum2DParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range [][2]int{{1, 1}, {3, 7}, {64, 64}, {200, 350}, {513, 129}} {
		nx, ny := dim[0], dim[1]
		src := randArray(rng, nx*ny)
		want := NewSum2D(src, nx, ny)
		for _, workers := range []int{2, 3, 8} {
			got := NewSum2DParallel(src, nx, ny, workers)
			assertEqualSum2D(t, want, got)
		}
	}
}

func TestRebuildReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nx, ny := 300, 400
	a := randArray(rng, nx*ny)
	b := randArray(rng, nx*ny)
	s := NewSum2D(a, nx, ny)
	p0 := &s.p[0]
	s.Rebuild(b, 4)
	if &s.p[0] != p0 {
		t.Fatal("Rebuild reallocated the prefix buffer")
	}
	assertEqualSum2D(t, NewSum2D(b, nx, ny), s)
}

func TestAddRegionDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		nx := 1 + rng.Intn(40)
		ny := 1 + rng.Intn(40)
		src := randArray(rng, nx*ny)
		s := NewSum2D(src, nx, ny)

		u1 := rng.Intn(nx)
		u2 := u1 + rng.Intn(nx-u1)
		v1 := rng.Intn(ny)
		v2 := v1 + rng.Intn(ny-v1)
		bw := v2 - v1 + 1
		delta := make([]int64, (u2-u1+1)*bw)
		balanced := trial%2 == 0 // exercise both the c==0 and c!=0 paths
		var total int64
		for i := range delta {
			d := int64(rng.Intn(9) - 4)
			delta[i] = d
			total += d
		}
		if balanced && len(delta) > 1 {
			delta[len(delta)-1] -= total
		}
		for u := u1; u <= u2; u++ {
			for v := v1; v <= v2; v++ {
				src[u*ny+v] += delta[(u-u1)*bw+(v-v1)]
			}
		}
		s.AddRegionDelta(u1, v1, u2, v2, delta)
		assertEqualSum2D(t, NewSum2D(src, nx, ny), s)
	}
}

func TestAddRegionDeltaPanicsOutsideArray(t *testing.T) {
	s := NewSum2D(make([]int64, 12), 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range box")
		}
	}()
	s.AddRegionDelta(0, 0, 3, 0, make([]int64, 4))
}

func TestTiled2DMatchesSum2D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dim := range [][2]int{{1, 1}, {5, 9}, {64, 64}, {130, 70}, {200, 257}} {
		nx, ny := dim[0], dim[1]
		src := randArray(rng, nx*ny)
		flat := NewSum2D(src, nx, ny)
		for _, b := range []int{1, 7, 64} {
			tiled := NewTiled2D(src, nx, ny, b)
			if tiled.Total() != flat.Total() {
				t.Fatalf("b=%d: Total = %d, want %d", b, tiled.Total(), flat.Total())
			}
			for trial := 0; trial < 200; trial++ {
				i1, j1 := rng.Intn(nx)-1, rng.Intn(ny)-1
				i2, j2 := i1+rng.Intn(nx), j1+rng.Intn(ny)
				if got, want := tiled.RangeSum(i1, j1, i2, j2), flat.RangeSum(i1, j1, i2, j2); got != want {
					t.Fatalf("b=%d: RangeSum(%d,%d,%d,%d) = %d, want %d", b, i1, j1, i2, j2, got, want)
				}
			}
		}
	}
}

// TestTiled2DRebuildRegionBoundaries pins the boundary cases of
// RebuildRegion: regions clipped against the array edges (including edges
// of partial tiles when the dimensions don't divide by the block size),
// single-cell regions, and regions spanning tile seams — where the dirty
// box touches more than one tile and the w/ta aggregates must be repaired
// across the seam.
func TestTiled2DRebuildRegionBoundaries(t *testing.T) {
	const b = 16
	// 150×190 leaves partial tiles on the right/top; 64×64 divides evenly.
	for _, dim := range [][2]int{{150, 190}, {64, 64}, {b, b}, {b - 1, 2*b + 3}} {
		nx, ny := dim[0], dim[1]
		rng := rand.New(rand.NewSource(int64(7 + nx)))
		src := randArray(rng, nx*ny)
		tiled := NewTiled2D(src, nx, ny, b)
		regions := [][4]int{
			{0, 0, 0, 0},                                     // single cell at the origin corner
			{nx - 1, ny - 1, nx - 1, ny - 1},                 // single cell at the far corner
			{nx / 2, ny / 2, nx / 2, ny / 2},                 // single interior cell
			{0, 0, nx - 1, 0},                                // first-column strip, clipped at both u edges
			{0, ny - 1, nx - 1, ny - 1},                      // last-column strip
			{0, 0, 0, ny - 1},                                // first-row strip, clipped at both v edges
			{nx - 1, 0, nx - 1, ny - 1},                      // last-row strip
			{0, 0, nx - 1, ny - 1},                           // the whole array
			{min(b-1, nx-1), 0, min(b, nx-1), 0},             // spans the first row seam
			{0, min(b-1, ny-1), 0, min(b, ny-1)},             // spans the first column seam
			{max(0, nx-b-1), max(0, ny-b-1), nx - 1, ny - 1}, // seam-crossing box clipped at the far edges
		}
		for ri, reg := range regions {
			u1, v1, u2, v2 := reg[0], reg[1], reg[2], reg[3]
			for u := u1; u <= u2; u++ {
				for v := v1; v <= v2; v++ {
					src[u*ny+v] += int64(rng.Intn(9) - 4)
				}
			}
			tiled.RebuildRegion(src, u1, v1, u2, v2)
			flat := NewSum2D(src, nx, ny)
			if tiled.Total() != flat.Total() {
				t.Fatalf("%dx%d region %d [%d..%d]x[%d..%d]: Total = %d, want %d",
					nx, ny, ri, u1, u2, v1, v2, tiled.Total(), flat.Total())
			}
			for q := 0; q < 200; q++ {
				i1, j1 := rng.Intn(nx)-1, rng.Intn(ny)-1
				i2, j2 := i1+rng.Intn(nx+1), j1+rng.Intn(ny+1)
				if got, want := tiled.RangeSum(i1, j1, i2, j2), flat.RangeSum(i1, j1, i2, j2); got != want {
					t.Fatalf("%dx%d region %d [%d..%d]x[%d..%d]: RangeSum(%d,%d,%d,%d) = %d, want %d",
						nx, ny, ri, u1, u2, v1, v2, i1, j1, i2, j2, got, want)
				}
			}
		}
	}
}

func TestTiled2DRebuildRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny := 150, 190
	src := randArray(rng, nx*ny)
	tiled := NewTiled2D(src, nx, ny, 16)
	for trial := 0; trial < 50; trial++ {
		u1 := rng.Intn(nx)
		u2 := u1 + rng.Intn(nx-u1)
		v1 := rng.Intn(ny)
		v2 := v1 + rng.Intn(ny-v1)
		for u := u1; u <= u2; u++ {
			for v := v1; v <= v2; v++ {
				src[u*ny+v] += int64(rng.Intn(9) - 4)
			}
		}
		tiled.RebuildRegion(src, u1, v1, u2, v2)
		flat := NewSum2D(src, nx, ny)
		for q := 0; q < 100; q++ {
			i1, j1 := rng.Intn(nx)-1, rng.Intn(ny)-1
			i2, j2 := i1+rng.Intn(nx), j1+rng.Intn(ny)
			if got, want := tiled.RangeSum(i1, j1, i2, j2), flat.RangeSum(i1, j1, i2, j2); got != want {
				t.Fatalf("trial %d: RangeSum(%d,%d,%d,%d) = %d, want %d", trial, i1, j1, i2, j2, got, want)
			}
		}
	}
}
