package prefixsum

import "fmt"

// Cube is a d-dimensional prefix-sum data cube [HAMS97]. After construction
// it answers the sum over any axis-aligned inclusive box in O(2^d) lookups.
//
// The paper uses the 4-d instance to discuss treating 2-d rectangles as 4-d
// points (x1, y1, x2, y2): COUNT over a 4-d dominance box then answers
// Level 2 relation queries exactly, at the cost of N^2 storage — the
// infeasible-but-exact alternative of §2 and Theorem 3.1.
type Cube struct {
	dims    []int
	strides []int
	p       []int64
}

// NewCube builds a prefix-sum cube over a row-major d-dimensional array.
// dims lists the size of every dimension; the source length must equal the
// product of the dims. A zero-dimensional cube holds a single scalar.
func NewCube(src []int64, dims []int) *Cube {
	size := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("prefixsum: non-positive dimension %d", d))
		}
		size *= d
	}
	if len(src) != size {
		panic(fmt.Sprintf("prefixsum: source length %d does not match dims %v", len(src), dims))
	}
	c := &Cube{
		dims:    append([]int(nil), dims...),
		strides: make([]int, len(dims)),
		p:       make([]int64, size),
	}
	copy(c.p, src)
	stride := 1
	for k := len(dims) - 1; k >= 0; k-- {
		c.strides[k] = stride
		stride *= dims[k]
	}
	// Prefix along each dimension in turn: after pass k, p holds prefix
	// sums over dimensions k..d-1.
	for k := len(dims) - 1; k >= 0; k-- {
		c.prefixAlong(k)
	}
	return c
}

// prefixAlong accumulates p in place along dimension k.
func (c *Cube) prefixAlong(k int) {
	dk, sk := c.dims[k], c.strides[k]
	// Iterate over all "columns" along dimension k: indices whose k-th
	// coordinate is 0, then add p[idx] += p[idx - sk] walking coordinate k.
	outer := len(c.p) / dk
	// Decompose flat index: idx = hi*(dk*sk) + lo, lo in [0, sk).
	block := dk * sk
	for o := 0; o < outer; o++ {
		hi := o / sk
		lo := o % sk
		base := hi*block + lo
		for x := 1; x < dk; x++ {
			c.p[base+x*sk] += c.p[base+(x-1)*sk]
		}
	}
}

// Dims returns a copy of the cube's dimensions.
func (c *Cube) Dims() []int { return append([]int(nil), c.dims...) }

// Size returns the number of cells in the cube.
func (c *Cube) Size() int { return len(c.p) }

// Total returns the sum of the whole array.
func (c *Cube) Total() int64 { return c.p[len(c.p)-1] }

// at returns the prefix value at the given coordinates, with any negative
// coordinate yielding 0.
func (c *Cube) at(coord []int) int64 {
	idx := 0
	for k, x := range coord {
		if x < 0 {
			return 0
		}
		idx += x * c.strides[k]
	}
	return c.p[idx]
}

// RangeSum returns the sum over the inclusive box lo..hi (one pair per
// dimension). Coordinates are clamped to the cube; inverted ranges sum to
// zero. It panics if the slice lengths do not match the dimensionality:
// that is a programming error, not a data error.
func (c *Cube) RangeSum(lo, hi []int) int64 {
	d := len(c.dims)
	if len(lo) != d || len(hi) != d {
		panic(fmt.Sprintf("prefixsum: RangeSum bounds rank %d/%d, cube rank %d", len(lo), len(hi), d))
	}
	cl := make([]int, d)
	ch := make([]int, d)
	for k := 0; k < d; k++ {
		l, h := lo[k], hi[k]
		if l < 0 {
			l = 0
		}
		if h >= c.dims[k] {
			h = c.dims[k] - 1
		}
		if l > h {
			return 0
		}
		cl[k], ch[k] = l, h
	}
	// Inclusion–exclusion over the 2^d corners.
	var sum int64
	corner := make([]int, d)
	for mask := 0; mask < 1<<d; mask++ {
		bits := 0
		for k := 0; k < d; k++ {
			if mask&(1<<k) != 0 {
				corner[k] = cl[k] - 1
				bits++
			} else {
				corner[k] = ch[k]
			}
		}
		v := c.at(corner)
		if bits%2 == 0 {
			sum += v
		} else {
			sum -= v
		}
	}
	return sum
}
