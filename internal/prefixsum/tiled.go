package prefixsum

import "fmt"

// Tiled2D is a blocked cumulative layout in the spirit of the relative
// prefix sums of Geffner et al. and the blocked variants surveyed in
// [HAMS97] follow-ups: the array is cut into b×b tiles, each tile stores
// its local 2-d prefix, and two thin aggregate arrays (per-tile-row column
// strips and per-row tile prefixes) bridge tiles. A prefix lookup is three
// reads instead of one, but a localized source change only rewrites the
// dirty tiles plus O(size/b) aggregate entries, so maintenance cost is
// O(dirty blocks) rather than O(array).
//
// It exists as the benchmark alternative to Sum2D.AddRegionDelta; see
// DESIGN.md for why the flat layout won the production slot.
type Tiled2D struct {
	nx, ny   int
	b        int
	nbx, nby int
	local    []int64 // nx×ny: 2-d prefix of src within each tile
	ta       []int64 // nbx×ny: sum of rows above tile-row bi, cols [0..j]
	w        []int64 // nx×nby: sum of rows [tileTop..i], tile-cols left of bj
}

// DefaultTileSize is the tile edge used when NewTiled2D is given a
// non-positive block size: big enough that the aggregate arrays are ~1.5%
// of the payload, small enough that a dirty tile rewrite stays in cache.
const DefaultTileSize = 64

// NewTiled2D builds the tiled cumulative form of an nx×ny row-major array
// with b×b tiles.
func NewTiled2D(src []int64, nx, ny, b int) *Tiled2D {
	if nx < 0 || ny < 0 || len(src) != nx*ny {
		panic(fmt.Sprintf("prefixsum: source length %d does not match %dx%d", len(src), nx, ny))
	}
	if b <= 0 {
		b = DefaultTileSize
	}
	t := &Tiled2D{
		nx: nx, ny: ny, b: b,
		nbx: (nx + b - 1) / b,
		nby: (ny + b - 1) / b,
	}
	t.local = make([]int64, nx*ny)
	t.ta = make([]int64, t.nbx*ny)
	t.w = make([]int64, nx*t.nby)
	for bi := 0; bi < t.nbx; bi++ {
		for bj := 0; bj < t.nby; bj++ {
			t.rebuildTile(src, bi, bj)
		}
	}
	t.rebuildW(0, nx-1)
	t.rebuildTA(1)
	return t
}

// rebuildTile recomputes the local 2-d prefix of tile (bi, bj) from src.
func (t *Tiled2D) rebuildTile(src []int64, bi, bj int) {
	i1, i2 := bi*t.b, min((bi+1)*t.b, t.nx)
	j1, j2 := bj*t.b, min((bj+1)*t.b, t.ny)
	for i := i1; i < i2; i++ {
		row := t.local[i*t.ny : (i+1)*t.ny]
		srow := src[i*t.ny : (i+1)*t.ny]
		var acc int64
		for j := j1; j < j2; j++ {
			acc += srow[j]
			row[j] = acc
			if i > i1 {
				row[j] += t.local[(i-1)*t.ny+j]
			}
		}
	}
}

// rebuildW recomputes the per-row tile prefixes for rows [i1..i2].
func (t *Tiled2D) rebuildW(i1, i2 int) {
	for i := i1; i <= i2; i++ {
		wrow := t.w[i*t.nby : (i+1)*t.nby]
		wrow[0] = 0
		for bj := 1; bj < t.nby; bj++ {
			lastCol := min(bj*t.b, t.ny) - 1
			wrow[bj] = wrow[bj-1] + t.local[i*t.ny+lastCol]
		}
	}
}

// rebuildTA recomputes the above-tile-row strips for tile-rows [from..nbx).
// Tile-row 0 has nothing above it and stays zero.
func (t *Tiled2D) rebuildTA(from int) {
	if from < 1 {
		from = 1
	}
	for bi := from; bi < t.nbx; bi++ {
		last := min(bi*t.b, t.nx) - 1 // bottom row of tile-row bi−1
		prev := t.ta[(bi-1)*t.ny : bi*t.ny]
		cur := t.ta[bi*t.ny : (bi+1)*t.ny]
		var acc int64 // full-tile column totals of tile-row bi−1, left of j's tile
		for j := 0; j < t.ny; j++ {
			strip := acc + t.local[last*t.ny+j]
			cur[j] = prev[j] + strip
			if j%t.b == t.b-1 {
				acc = strip
			}
		}
	}
}

// RebuildRegion repairs the cumulative form after src changed only inside
// the inclusive box [u1..u2]×[v1..v2]: dirty tiles are recomputed in full,
// the w rows of the dirty tile-rows are refreshed, and the ta strips below
// the first dirty tile-row are re-derived from tile bottoms — O(dirty
// tiles · b² + size/b) total.
func (t *Tiled2D) RebuildRegion(src []int64, u1, v1, u2, v2 int) {
	if u1 < 0 || v1 < 0 || u1 > u2 || v1 > v2 || u2 >= t.nx || v2 >= t.ny {
		panic(fmt.Sprintf("prefixsum: rebuild box [%d..%d]x[%d..%d] outside %dx%d", u1, u2, v1, v2, t.nx, t.ny))
	}
	if len(src) != t.nx*t.ny {
		panic("prefixsum: rebuild source length mismatch")
	}
	bi1, bi2 := u1/t.b, u2/t.b
	bj1, bj2 := v1/t.b, v2/t.b
	for bi := bi1; bi <= bi2; bi++ {
		for bj := bj1; bj <= bj2; bj++ {
			t.rebuildTile(src, bi, bj)
		}
	}
	t.rebuildW(bi1*t.b, min((bi2+1)*t.b, t.nx)-1)
	t.rebuildTA(bi1 + 1)
}

// NX returns the first dimension size.
func (t *Tiled2D) NX() int { return t.nx }

// NY returns the second dimension size.
func (t *Tiled2D) NY() int { return t.ny }

// Total returns the sum of the whole array.
func (t *Tiled2D) Total() int64 { return t.PrefixAt(t.nx-1, t.ny-1) }

// PrefixAt returns P(i, j) = Σ src[0..i][0..j] with Sum2D.PrefixAt's
// boundary conventions: negative coordinates yield 0, overshoot clamps.
func (t *Tiled2D) PrefixAt(i, j int) int64 {
	if i < 0 || j < 0 {
		return 0
	}
	if i >= t.nx {
		i = t.nx - 1
	}
	if j >= t.ny {
		j = t.ny - 1
	}
	bi, bj := i/t.b, j/t.b
	return t.ta[bi*t.ny+j] + t.w[i*t.nby+bj] + t.local[i*t.ny+j]
}

// RangeSum returns the sum of src over the inclusive range
// [i1..i2]×[j1..j2], clamped like Sum2D.RangeSum.
func (t *Tiled2D) RangeSum(i1, j1, i2, j2 int) int64 {
	if i1 < 0 {
		i1 = 0
	}
	if j1 < 0 {
		j1 = 0
	}
	if i2 >= t.nx {
		i2 = t.nx - 1
	}
	if j2 >= t.ny {
		j2 = t.ny - 1
	}
	if i1 > i2 || j1 > j2 {
		return 0
	}
	return t.PrefixAt(i2, j2) - t.PrefixAt(i1-1, j2) - t.PrefixAt(i2, j1-1) + t.PrefixAt(i1-1, j1-1)
}
