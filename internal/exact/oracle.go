package exact

import (
	"fmt"

	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/prefixsum"
)

// Oracle answers exact Level 2 relation counts for arbitrary grid-aligned
// queries in constant time by treating each 2-d object span as the 4-d
// point (i1, j1, i2, j2) and building a 4-d prefix-sum cube over those
// points (§2's "rectangles as 4-d points" construction).
//
// Every Level 2 count is then a 4-d dominance box:
//
//	contains(q):   i1 ≥ q.I1 ∧ i2 ≤ q.I2 ∧ j1 ≥ q.J1 ∧ j2 ≤ q.J2
//	contained(q):  i1 < q.I1 ∧ i2 > q.I2 ∧ j1 < q.J1 ∧ j2 > q.J2
//	intersect(q):  i1 ≤ q.I2 ∧ i2 ≥ q.I1 ∧ j1 ≤ q.J2 ∧ j2 ≥ q.J1
//
// The price is Θ((nx·ny)²) storage — exactly the blowup Theorem 3.1 proves
// necessary for any exact contains structure, which is why this oracle is
// only practical at coarse resolutions (the paper's example: 1°×1° over the
// world needs ~4G values). NewOracle enforces a cell budget to keep callers
// honest.
type Oracle struct {
	g    *grid.Grid
	cube *prefixsum.Cube
	n    int64
}

// MaxOracleCells bounds the cube size NewOracle will allocate (64 M cells
// = 512 MB of int64), a guard against accidentally requesting the paper's
// infeasible full-resolution configuration.
const MaxOracleCells = 64 << 20

// NewOracle builds the exact oracle for the given object spans at g's
// resolution. It returns an error when the cube would exceed
// MaxOracleCells — the storage wall of Theorem 3.1.
func NewOracle(g *grid.Grid, spans []grid.Span) (*Oracle, error) {
	nx, ny := g.NX(), g.NY()
	cells := nx * ny * nx * ny
	if nx > 0 && ny > 0 && (cells/nx/ny != nx*ny || cells > MaxOracleCells) {
		return nil, fmt.Errorf("exact: oracle at %dx%d needs %d cells, over the %d budget (Theorem 3.1 storage wall)",
			nx, ny, cells, MaxOracleCells)
	}
	src := make([]int64, cells)
	// Dimension order: (i1, j1, i2, j2).
	for _, s := range spans {
		idx := ((s.I1*ny+s.J1)*nx+s.I2)*ny + s.J2
		src[idx]++
	}
	return &Oracle{
		g:    g,
		cube: prefixsum.NewCube(src, []int{nx, ny, nx, ny}),
		n:    int64(len(spans)),
	}, nil
}

// Count returns the number of objects in the oracle.
func (o *Oracle) Count() int64 { return o.n }

// StorageCells returns the number of cube cells, the oracle's storage cost.
func (o *Oracle) StorageCells() int { return o.cube.Size() }

// Contains returns the exact N_cs for query span q.
func (o *Oracle) Contains(q grid.Span) int64 {
	nx, ny := o.g.NX(), o.g.NY()
	return o.cube.RangeSum(
		[]int{q.I1, q.J1, 0, 0},
		[]int{nx - 1, ny - 1, q.I2, q.J2},
	)
}

// Contained returns the exact N_cd for query span q.
func (o *Oracle) Contained(q grid.Span) int64 {
	nx, ny := o.g.NX(), o.g.NY()
	return o.cube.RangeSum(
		[]int{0, 0, q.I2 + 1, q.J2 + 1},
		[]int{q.I1 - 1, q.J1 - 1, nx - 1, ny - 1},
	)
}

// Intersecting returns the exact n_ii for query span q.
func (o *Oracle) Intersecting(q grid.Span) int64 {
	nx, ny := o.g.NX(), o.g.NY()
	return o.cube.RangeSum(
		[]int{0, 0, q.I1, q.J1},
		[]int{q.I2, q.J2, nx - 1, ny - 1},
	)
}

// Evaluate returns the full exact Level 2 tally for query span q.
func (o *Oracle) Evaluate(q grid.Span) geom.Rel2Counts {
	in := o.Intersecting(q)
	cs := o.Contains(q)
	cd := o.Contained(q)
	return geom.Rel2Counts{
		Disjoint:  o.n - in,
		Contains:  cs,
		Contained: cd,
		Overlap:   in - cs - cd,
	}
}

// TheoremLowerBound returns the storage lower bound of Theorem 3.1 for an
// nx×ny grid: Π nᵢ(nᵢ+1)/2 values — the number of independent histogram
// buckets any exact contains algorithm must be able to reconstruct.
func TheoremLowerBound(nx, ny int) int64 {
	return int64(nx) * int64(nx+1) / 2 * int64(ny) * int64(ny+1) / 2
}
