// Package exact computes ground-truth Level 2 relation counts at grid
// resolution, plus the storage accounting behind Theorem 3.1.
//
// Three evaluators are provided, trading generality for speed:
//
//   - EvaluateQuery: brute force over the object spans, O(|S|) per query.
//     The reference implementation everything else is checked against.
//   - EvaluateSet: one pass over the objects per browsing query set,
//     O(|S| + tiles) total, using 2-d difference arrays over the tile grid.
//     This is what makes ground truth for 1M-object × 16,200-query
//     experiments cheap.
//   - Oracle: the "rectangles as 4-d points" prefix-sum cube discussed in
//     §2 — exact and O(1) per query for arbitrary grid-aligned queries, at
//     the Θ(N²) storage cost Theorem 3.1 proves unavoidable.
//
// All evaluators operate on snapped object spans (grid.Snap), i.e. under
// the same shrinking convention as the histograms, so estimator error
// measured against them is purely algorithmic.
package exact

import (
	"fmt"

	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/query"
)

// Spans snaps every object of a dataset to g, dropping objects outside the
// space. It is the shared preprocessing step for all exact evaluators.
func Spans(g *grid.Grid, rects []geom.Rect) []grid.Span {
	out := make([]grid.Span, 0, len(rects))
	for _, r := range rects {
		if s, ok := g.Snap(r); ok {
			out = append(out, s)
		}
	}
	return out
}

// EvaluateQuery classifies every object span against the query span and
// tallies the Level 2 counts. O(|S|).
func EvaluateQuery(spans []grid.Span, q grid.Span) geom.Rel2Counts {
	var c geom.Rel2Counts
	for _, s := range spans {
		c.Add(q.Rel2(s))
	}
	return c
}

// EvaluateSet computes the exact Level 2 counts for every tile of a
// browsing query set in a single pass over the objects. The result is
// indexed like qs.Tiles.
//
// Objects outside the selected region still count: they are Disjoint from
// every tile. Equals is always zero under the shrinking convention.
func EvaluateSet(spans []grid.Span, qs *query.Set) []geom.Rel2Counts {
	cols, rows := qs.Cols, qs.Rows
	if cols <= 0 || rows <= 0 || len(qs.Tiles) != cols*rows {
		panic(fmt.Sprintf("exact: query set %q lacks tiling metadata", qs.Name))
	}
	tw, th := qs.TileW, qs.TileH
	reg := qs.Region

	// Three difference arrays over the (cols+1)×(rows+1) tile grid.
	w := rows + 1
	intersect := make([]int64, (cols+1)*w)
	contains := make([]int64, (cols+1)*w)
	contained := make([]int64, (cols+1)*w)

	bump := func(d []int64, c1, r1, c2, r2 int) {
		if c1 < 0 {
			c1 = 0
		}
		if r1 < 0 {
			r1 = 0
		}
		if c2 >= cols {
			c2 = cols - 1
		}
		if r2 >= rows {
			r2 = rows - 1
		}
		if c1 > c2 || r1 > r2 {
			return
		}
		d[c1*w+r1]++
		d[c1*w+r2+1]--
		d[(c2+1)*w+r1]--
		d[(c2+1)*w+r2+1]++
	}

	for _, s := range spans {
		// Tile-column/row ranges whose tiles intersect the object.
		ic1 := floorDiv(s.I1-reg.I1, tw)
		ic2 := floorDiv(s.I2-reg.I1, tw)
		ir1 := floorDiv(s.J1-reg.J1, th)
		ir2 := floorDiv(s.J2-reg.J1, th)
		bump(intersect, ic1, ir1, ic2, ir2)

		// A tile contains the object iff the object fits in exactly one tile
		// of the tiling (and that tile is inside the region).
		if ic1 == ic2 && ir1 == ir2 &&
			ic1 >= 0 && ic1 < cols && ir1 >= 0 && ir1 < rows &&
			s.I1 >= reg.I1 && s.I2 <= reg.I2 && s.J1 >= reg.J1 && s.J2 <= reg.J2 {
			idx := ic1*w + ir1
			contains[idx]++
			contains[idx+1]--
			contains[(ic1+1)*w+ir1]--
			contains[(ic1+1)*w+ir1+1]++
		}

		// The object contains a tile iff the tile lies strictly inside the
		// object's span: tileI1 >= s.I1+1 and tileI2 <= s.I2-1 (both dims).
		cc1 := ceilDiv(s.I1+1-reg.I1, tw)
		cc2 := floorDiv(s.I2-reg.I1, tw) - 1
		cr1 := ceilDiv(s.J1+1-reg.J1, th)
		cr2 := floorDiv(s.J2-reg.J1, th) - 1
		bump(contained, cc1, cr1, cc2, cr2)
	}

	finalize(intersect, cols, rows)
	finalize(contains, cols, rows)
	finalize(contained, cols, rows)

	n := int64(len(spans))
	out := make([]geom.Rel2Counts, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			idx := c*w + r
			in := intersect[idx]
			cs := contains[idx]
			cd := contained[idx]
			out[r*cols+c] = geom.Rel2Counts{
				Disjoint:  n - in,
				Contains:  cs,
				Contained: cd,
				Overlap:   in - cs - cd,
			}
		}
	}
	return out
}

// finalize turns a 2-d difference array into per-tile values in place (the
// (cols+1)×(rows+1) padding rows/columns are left dirty).
func finalize(d []int64, cols, rows int) {
	w := rows + 1
	colAcc := make([]int64, rows)
	for c := 0; c < cols; c++ {
		var rowAcc int64
		for r := 0; r < rows; r++ {
			rowAcc += d[c*w+r]
			colAcc[r] += rowAcc
			d[c*w+r] = colAcc[r]
		}
	}
}

// floorDiv is integer division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv is integer division rounding toward positive infinity.
func ceilDiv(a, b int) int { return -floorDiv(-a, b) }
