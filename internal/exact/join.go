package exact

import (
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/rtree"
)

// JoinSpans returns the exact number of pairs (a, b), a from as and b from
// bs, whose cell spans share at least one cell — the ground truth for the
// two-histogram join product sum over MBR datasets. It uses a dual-rtree
// join over the span rectangles, so it stays near-linear on realistic
// (sparse-overlap) corpora while remaining a pure counting oracle.
func JoinSpans(g *grid.Grid, as, bs []grid.Span) int64 {
	ta, tb := spanTree(g, as), spanTree(g, bs)
	return rtree.JoinCount(ta, tb)
}

// JoinTruth is the exact-side result of a rasterized join: the number of
// cell-sharing pairs, the summed Euler characteristic of the pairwise
// intersections (what the product sum computes), and whether every
// intersecting pair had χ = 1 — the condition under which the product sum
// is exactly the pair count.
type JoinTruth struct {
	Pairs   int64
	ChiSum  int64
	AllUnit bool
}

// JoinRasters computes the exact join ground truth between two rasterized
// object sets by brute-force pairwise run intersection, prefiltered with a
// dual-rtree join over the objects' bounding spans (sound: objects whose
// bounding boxes share no cell share no cell). Each object's runs must be
// normalized, as grid.Rasterize and grid.NormalizeRuns produce.
func JoinRasters(g *grid.Grid, as, bs [][]grid.Span) JoinTruth {
	ta, tb := boundsTree(g, as), boundsTree(g, bs)
	truth := JoinTruth{AllUnit: true}
	rtree.JoinPairs(ta, tb, func(ia, ib int64) {
		common := grid.IntersectRuns(as[ia], bs[ib])
		if len(common) == 0 {
			return
		}
		_, chi := grid.RunsTopology(common)
		truth.Pairs++
		truth.ChiSum += int64(chi)
		if chi != 1 {
			truth.AllUnit = false
		}
	})
	return truth
}

// spanTree bulk-loads the span rectangles of a dataset; ids are indices.
func spanTree(g *grid.Grid, spans []grid.Span) *rtree.Tree {
	rects := make([]geom.Rect, len(spans))
	for i, s := range spans {
		rects[i] = g.SpanRect(s)
	}
	return rtree.BulkDefault(rects)
}

// boundsTree bulk-loads the bounding-span rectangles of rasterized objects.
func boundsTree(g *grid.Grid, objs [][]grid.Span) *rtree.Tree {
	rects := make([]geom.Rect, len(objs))
	for i, runs := range objs {
		b := runs[0]
		for _, r := range runs[1:] {
			if r.I1 < b.I1 {
				b.I1 = r.I1
			}
			if r.I2 > b.I2 {
				b.I2 = r.I2
			}
			if r.J1 < b.J1 {
				b.J1 = r.J1
			}
			if r.J2 > b.J2 {
				b.J2 = r.J2
			}
		}
		rects[i] = g.SpanRect(b)
	}
	return rtree.BulkDefault(rects)
}
