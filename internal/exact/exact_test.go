package exact

import (
	"math/rand"
	"testing"

	"spatialhist/internal/dataset"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
	"spatialhist/internal/query"
)

func randSpans(r *rand.Rand, nx, ny, n int) []grid.Span {
	out := make([]grid.Span, n)
	for k := range out {
		i1, j1 := r.Intn(nx), r.Intn(ny)
		out[k] = grid.Span{I1: i1, J1: j1, I2: i1 + r.Intn(nx-i1), J2: j1 + r.Intn(ny-j1)}
	}
	return out
}

func TestEvaluateQueryManual(t *testing.T) {
	q := grid.Span{I1: 4, J1: 4, I2: 7, J2: 7}
	spans := []grid.Span{
		{I1: 0, J1: 0, I2: 1, J2: 1},   // disjoint
		{I1: 5, J1: 5, I2: 6, J2: 6},   // contained in q
		{I1: 4, J1: 4, I2: 7, J2: 7},   // same span: contains (object shrunk)
		{I1: 2, J1: 2, I2: 9, J2: 9},   // contains q strictly
		{I1: 6, J1: 6, I2: 10, J2: 10}, // overlap
		{I1: 0, J1: 5, I2: 11, J2: 6},  // crossover: overlap
	}
	c := EvaluateQuery(spans, q)
	want := geom.Rel2Counts{Disjoint: 1, Contains: 2, Contained: 1, Overlap: 2}
	if c != want {
		t.Fatalf("EvaluateQuery = %+v, want %+v", c, want)
	}
	if c.Total() != 6 || c.Intersecting() != 5 {
		t.Fatalf("Total/Intersecting = %d/%d", c.Total(), c.Intersecting())
	}
}

func TestEvaluateSetMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nx := []int{12, 24, 36}[r.Intn(3)]
		ny := []int{12, 24}[r.Intn(2)]
		g := grid.NewUnit(nx, ny)
		spans := randSpans(r, nx, ny, 200)
		tile := []int{2, 3, 4, 6}[r.Intn(4)]
		qs, err := query.QN(g, tile)
		if err != nil {
			t.Fatal(err)
		}
		fast := EvaluateSet(spans, qs)
		for k, q := range qs.Tiles {
			if want := EvaluateQuery(spans, q); fast[k] != want {
				t.Fatalf("trial %d tile %d (%v): fast=%+v brute=%+v", trial, k, q, fast[k], want)
			}
		}
	}
}

func TestEvaluateSetSubRegion(t *testing.T) {
	// Objects outside the browsed region must count as disjoint everywhere.
	r := rand.New(rand.NewSource(32))
	spans := randSpans(r, 30, 30, 300)
	region := grid.Span{I1: 6, J1: 9, I2: 17, J2: 20} // 12x12 region
	qs, err := query.Browsing(region, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	fast := EvaluateSet(spans, qs)
	for k, q := range qs.Tiles {
		if want := EvaluateQuery(spans, q); fast[k] != want {
			t.Fatalf("tile %d (%v): fast=%+v brute=%+v", k, q, fast[k], want)
		}
	}
}

func TestEvaluateSetPanicsWithoutTiling(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EvaluateSet without tiling metadata must panic")
		}
	}()
	EvaluateSet(nil, &query.Set{Name: "broken", Tiles: make([]grid.Span, 3)})
}

func TestSpansDropsOutside(t *testing.T) {
	g := grid.NewUnit(10, 10)
	spans := Spans(g, []geom.Rect{
		geom.NewRect(1, 1, 2, 2),
		geom.NewRect(50, 50, 60, 60), // outside
		geom.NewRect(0.1, 0.1, 0.2, 0.2),
	})
	if len(spans) != 2 {
		t.Fatalf("Spans kept %d, want 2", len(spans))
	}
}

func TestOracleMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	g := grid.NewUnit(14, 10)
	spans := randSpans(r, 14, 10, 150)
	o, err := NewOracle(g, spans)
	if err != nil {
		t.Fatal(err)
	}
	if o.Count() != 150 {
		t.Fatalf("Count = %d", o.Count())
	}
	if o.StorageCells() != 14*10*14*10 {
		t.Fatalf("StorageCells = %d", o.StorageCells())
	}
	for trial := 0; trial < 500; trial++ {
		i1, j1 := r.Intn(14), r.Intn(10)
		q := grid.Span{I1: i1, J1: j1, I2: i1 + r.Intn(14-i1), J2: j1 + r.Intn(10-j1)}
		want := EvaluateQuery(spans, q)
		if got := o.Evaluate(q); got != want {
			t.Fatalf("Oracle.Evaluate(%v) = %+v, want %+v", q, got, want)
		}
	}
}

func TestOracleStorageWall(t *testing.T) {
	g := grid.NewUnit(360, 180)
	if _, err := NewOracle(g, nil); err == nil {
		t.Fatal("full-resolution oracle must hit the Theorem 3.1 storage wall")
	}
}

func TestTheoremLowerBound(t *testing.T) {
	// The paper's example: 360x180 at 1x1 needs (360*361)/2 * (180*181)/2
	// values ≈ 1G (4 GB as 4-byte values).
	got := TheoremLowerBound(360, 180)
	want := int64(360*361/2) * int64(180*181/2)
	if got != want {
		t.Fatalf("TheoremLowerBound = %d, want %d", got, want)
	}
	if got < 1_000_000_000 {
		t.Fatalf("lower bound %d should exceed 1e9 (the paper's ~4GB point)", got)
	}
	if TheoremLowerBound(1, 1) != 1 {
		t.Fatal("1x1 bound must be 1")
	}
}

func TestEndToEndOnGeneratedData(t *testing.T) {
	// Exercise the full pipeline the experiments use: generate, snap,
	// evaluate a paper query set, and sanity-check the totals.
	d := dataset.SzSkew(3000, 77)
	g := grid.NewUnit(360, 180)
	spans := Spans(g, d.Rects)
	if len(spans) != 3000 {
		t.Fatalf("snapped %d/3000", len(spans))
	}
	qs, err := query.QN(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluateSet(spans, qs)
	if len(res) != 648 {
		t.Fatalf("got %d results", len(res))
	}
	var cs, cd int64
	for _, c := range res {
		if c.Total() != 3000 {
			t.Fatalf("tile total %d != 3000", c.Total())
		}
		if c.Overlap < 0 || c.Contains < 0 || c.Contained < 0 || c.Disjoint < 0 {
			t.Fatalf("negative count: %+v", c)
		}
		cs += c.Contains
		cd += c.Contained
	}
	// sz_skew has both small objects (contained in 10x10 tiles) and large
	// ones (containing tiles); both must show up.
	if cs == 0 || cd == 0 {
		t.Fatalf("sz_skew ground truth degenerate: sum N_cs=%d, sum N_cd=%d", cs, cd)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fd, cd int }{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 5, 0, 1},
		{-1, 5, -1, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.fd {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fd)
		}
		if got := ceilDiv(c.a, c.b); got != c.cd {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.cd)
		}
	}
}
