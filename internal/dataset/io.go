package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"spatialhist/internal/geom"
)

// Binary format:
//
//	magic   [8]byte  "SPHIST01"
//	nameLen uint32, name bytes
//	extent  4×float64 (XMin, YMin, XMax, YMax)
//	count   uint64
//	rects   count × 4×float64
//
// Everything is little-endian. The format is intentionally dumb: datasets
// are large, flat and rectangular, and a fixed-stride layout streams well.

var magic = [8]byte{'S', 'P', 'H', 'I', 'S', 'T', '0', '1'}

const maxNameLen = 1 << 16

// Write serializes the dataset to w.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(d.Name) > maxNameLen {
		return fmt.Errorf("dataset: name too long (%d bytes)", len(d.Name))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(d.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(d.Name); err != nil {
		return err
	}
	ext := [4]float64{d.Extent.XMin, d.Extent.YMin, d.Extent.XMax, d.Extent.YMax}
	if err := binary.Write(bw, binary.LittleEndian, ext); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.Rects))); err != nil {
		return err
	}
	buf := make([]byte, 32)
	for _, r := range d.Rects {
		binary.LittleEndian.PutUint64(buf[0:], math.Float64bits(r.XMin))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(r.YMin))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.XMax))
		binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(r.YMax))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a dataset from r.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", m)
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("dataset: reading name length: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("dataset: unreasonable name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("dataset: reading name: %w", err)
	}
	var ext [4]float64
	if err := binary.Read(br, binary.LittleEndian, &ext); err != nil {
		return nil, fmt.Errorf("dataset: reading extent: %w", err)
	}
	extent := geom.Rect{XMin: ext[0], YMin: ext[1], XMax: ext[2], YMax: ext[3]}
	if !extent.Valid() {
		return nil, fmt.Errorf("dataset: invalid extent %v", extent)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("dataset: reading count: %w", err)
	}
	const maxCount = 1 << 31
	if count > maxCount {
		return nil, fmt.Errorf("dataset: unreasonable object count %d", count)
	}
	// Grow the slice as payload actually arrives rather than trusting the
	// header: a crafted count must not pre-allocate gigabytes (found by
	// FuzzRead).
	rects := make([]geom.Rect, 0, min(count, 1<<16))
	buf := make([]byte, 32)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: reading object %d: %w", i, err)
		}
		r := geom.Rect{
			XMin: math.Float64frombits(binary.LittleEndian.Uint64(buf[0:])),
			YMin: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
			XMax: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
			YMax: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
		}
		if !r.Valid() {
			return nil, fmt.Errorf("dataset: invalid object %d: %v", i, r)
		}
		rects = append(rects, r)
	}
	return &Dataset{Name: string(name), Extent: extent, Rects: rects}, nil
}

// Save writes the dataset to a file.
func (d *Dataset) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return d.Write(f)
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
