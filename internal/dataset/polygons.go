package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"spatialhist/internal/geom"
)

// PolyDataset is a named collection of simple polygon objects within an
// extent — the beyond-MBR counterpart of Dataset for the rasterized-object
// pipeline.
type PolyDataset struct {
	Name   string
	Extent geom.Rect
	Polys  []geom.Polygon
}

// Len returns the number of objects.
func (d *PolyDataset) Len() int { return len(d.Polys) }

// String implements fmt.Stringer.
func (d *PolyDataset) String() string {
	return fmt.Sprintf("%s: %d polygons in %v", d.Name, len(d.Polys), d.Extent)
}

// Polygonize derives a polygon dataset from an MBR dataset by inscribing a
// simple polygon into every rectangle: convex fans on the rectangle's
// inscribed ellipse, a starFrac fraction of concave stars, and a rectFrac
// fraction kept as the exact rectangle (a 4-gon whose rasterization has no
// partial cells on aligned grids). Vertices are radially monotone, so every
// polygon is simple; all vertices stay inside the source rectangle, so the
// polygons inherit the dataset's spatial distribution and stay inside the
// extent. Deterministic given the seed.
func Polygonize(d *Dataset, seed int64, starFrac, rectFrac float64) *PolyDataset {
	r := rand.New(rand.NewSource(seed))
	out := &PolyDataset{Name: d.Name + "_poly", Extent: d.Extent}
	out.Polys = make([]geom.Polygon, 0, len(d.Rects))
	for _, rect := range d.Rects {
		out.Polys = append(out.Polys, inscribe(r, rect, starFrac, rectFrac))
	}
	return out
}

// inscribe draws one simple polygon inside rect.
func inscribe(r *rand.Rand, rect geom.Rect, starFrac, rectFrac float64) geom.Polygon {
	if rectFrac > 0 && r.Float64() < rectFrac {
		return geom.Polygon{
			{X: rect.XMin, Y: rect.YMin}, {X: rect.XMax, Y: rect.YMin},
			{X: rect.XMax, Y: rect.YMax}, {X: rect.XMin, Y: rect.YMax},
		}
	}
	cx, cy := (rect.XMin+rect.XMax)/2, (rect.YMin+rect.YMax)/2
	rx, ry := rect.Width()/2, rect.Height()/2
	star := starFrac > 0 && r.Float64() < starFrac
	k := 3 + r.Intn(6)
	if star {
		k = 2 * (3 + r.Intn(4))
	}
	p := make(geom.Polygon, k)
	base := r.Float64() * 2 * math.Pi
	for i := range p {
		// Jittered strictly increasing angles keep the polygon simple.
		a := base + (float64(i)+0.2+0.6*r.Float64())*2*math.Pi/float64(k)
		f := 0.6 + 0.4*r.Float64()
		if star {
			if i%2 == 0 {
				f = 0.8 + 0.2*r.Float64()
			} else {
				f = 0.25 + 0.2*r.Float64()
			}
		}
		p[i] = geom.Point{X: cx + f*rx*math.Cos(a), Y: cy + f*ry*math.Sin(a)}
	}
	return p
}
