package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := SzSkew(500, 13)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "sz_csv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sz_csv" || got.Len() != 500 {
		t.Fatalf("round trip = %v", got)
	}
	// Objects inside the paper space keep the paper extent.
	if got.Extent != DefaultExtent {
		t.Fatalf("extent = %v, want DefaultExtent", got.Extent)
	}
	for i := range d.Rects {
		if got.Rects[i] != d.Rects[i] {
			t.Fatalf("rect %d mismatch: %v vs %v", i, got.Rects[i], d.Rects[i])
		}
	}
}

func TestReadCSVVariants(t *testing.T) {
	// No header, reordered bounds, whitespace.
	in := "3,4,1,2\n 5, 6, 7, 8\n"
	d, err := ReadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Rects[0].XMin != 1 || d.Rects[0].YMax != 4 {
		t.Fatalf("parsed = %+v", d.Rects)
	}
	// Header accepted.
	d, err = ReadCSV(strings.NewReader("x1,y1,x2,y2\n0,0,1,1\n"), "h")
	if err != nil || d.Len() != 1 {
		t.Fatalf("header variant: %v, %v", d, err)
	}
	// Objects outside the paper space get their own MBR extent.
	d, err = ReadCSV(strings.NewReader("0,0,1000,1000\n"), "big")
	if err != nil || d.Extent.XMax != 1000 {
		t.Fatalf("big extent: %v, %v", d, err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "x1,y1,x2,y2\n",
		"wrong fields": "1,2,3\n",
		"non-numeric":  "1,2,3,z\n",
		"NaN":          "1,2,3,NaN\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "x"); err == nil {
			t.Errorf("%s: must error", name)
		}
	}
}
