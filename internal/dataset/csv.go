package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"spatialhist/internal/geom"
)

// CSV interop: the lowest-friction way to get real MBR data in and out of
// the library. The format is one object per record, four numeric fields
// x1,y1,x2,y2 (any coordinate order within a pair), with an optional
// header record containing those names.

// ReadCSV parses a dataset from CSV. The extent is the MBR of the objects
// unless every object fits DefaultExtent, which is then used (so paper
// datasets round-trip onto the paper grid).
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.TrimLeadingSpace = true
	var rects []geom.Rect
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		if first {
			first = false
			if isHeader(rec) {
				continue
			}
		}
		var vals [4]float64
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				line, _ := cr.FieldPos(i)
				return nil, fmt.Errorf("dataset: CSV line %d field %d: %w", line, i+1, err)
			}
			vals[i] = v
		}
		rc := geom.NewRect(vals[0], vals[1], vals[2], vals[3])
		if !rc.Valid() {
			line, _ := cr.FieldPos(0)
			return nil, fmt.Errorf("dataset: CSV line %d: invalid rectangle %v", line, rc)
		}
		rects = append(rects, rc)
	}
	if len(rects) == 0 {
		return nil, fmt.Errorf("dataset: CSV contained no objects")
	}
	extent := geom.MBROf(rects)
	if DefaultExtent.Contains(extent) {
		extent = DefaultExtent
	}
	return &Dataset{Name: name, Extent: extent, Rects: rects}, nil
}

func isHeader(rec []string) bool {
	for _, f := range rec {
		if _, err := strconv.ParseFloat(f, 64); err != nil {
			return true
		}
	}
	return false
}

// WriteCSV serializes the dataset as x1,y1,x2,y2 records with a header.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"x1", "y1", "x2", "y2"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, rc := range d.Rects {
		if err := cw.Write([]string{f(rc.XMin), f(rc.YMin), f(rc.XMax), f(rc.YMax)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
