package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestGeneratorsBasicProperties(t *testing.T) {
	const n = 2000
	for _, name := range Names() {
		d, err := Generate(name, n, 1)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if d.Len() != n {
			t.Errorf("%s: Len = %d, want %d", name, d.Len(), n)
		}
		if d.Name != name {
			t.Errorf("%s: Name = %q", name, d.Name)
		}
		for i, r := range d.Rects {
			if !r.Valid() {
				t.Fatalf("%s: invalid rect %d: %v", name, i, r)
			}
			if !d.Extent.Contains(r) {
				t.Fatalf("%s: rect %d escapes extent: %v", name, i, r)
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, _ := Generate(name, 500, 42)
		b, _ := Generate(name, 500, 42)
		c, _ := Generate(name, 500, 43)
		for i := range a.Rects {
			if a.Rects[i] != b.Rects[i] {
				t.Fatalf("%s: same seed diverges at %d", name, i)
			}
		}
		same := true
		for i := range a.Rects {
			if a.Rects[i] != c.Rects[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical data", name)
		}
	}
}

func TestSpSkewShape(t *testing.T) {
	d := SpSkew(3000, 7)
	interior := 0
	for _, r := range d.Rects {
		// Objects not clipped at the border must be exactly 3.6x1.8.
		if r.XMin > 0 && r.YMin > 0 && r.XMax < 360 && r.YMax < 180 {
			interior++
			if math.Abs(r.Width()-3.6) > 1e-9 || math.Abs(r.Height()-1.8) > 1e-9 {
				t.Fatalf("interior sp_skew object has size %gx%g, want 3.6x1.8", r.Width(), r.Height())
			}
		}
	}
	if interior < 2000 {
		t.Errorf("only %d/3000 interior objects; generator too border-heavy", interior)
	}
	// Skew check: the densest 10% of coarse cells should hold well over 10%
	// of the centers.
	g := CenterGrid(d, 36, 18)
	var counts []int
	total := 0
	for _, row := range g {
		for _, v := range row {
			counts = append(counts, v)
			total += v
		}
	}
	top := 0
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j] > counts[i] {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	for i := 0; i < len(counts)/10; i++ {
		top += counts[i]
	}
	if float64(top) < 0.3*float64(total) {
		t.Errorf("sp_skew not skewed: densest 10%% of cells hold %d/%d centers", top, total)
	}
}

func TestSzSkewShape(t *testing.T) {
	d := SzSkew(5000, 7)
	big := 0
	for _, r := range d.Rects {
		if r.Width() > 180 || r.Height() > 180 {
			t.Fatalf("sz_skew object larger than 180: %v", r)
		}
		if r.Area() >= 100 {
			big++
		}
	}
	if big == 0 {
		t.Errorf("sz_skew produced no large objects; Zipf tail is load-bearing for Fig 14(b)")
	}
	// The head of the Zipf distribution should dominate.
	s := Summarize(d)
	if s.AreaP50 > 16 {
		t.Errorf("sz_skew median area = %g, want small-object-dominated (<16)", s.AreaP50)
	}
}

func TestADLLikeShape(t *testing.T) {
	d := ADLLike(5000, 7)
	s := Summarize(d)
	if s.Points == 0 {
		t.Errorf("adl must include point records")
	}
	if s.LargeShare == 0 {
		t.Errorf("adl must include large maps (breaks N_cd=0)")
	}
	if s.LargeShare > 0.2 {
		t.Errorf("adl large share %.2f too high; should be a tail", s.LargeShare)
	}
}

func TestCARoadLikeShape(t *testing.T) {
	d := CARoadLike(5000, 7)
	small := 0
	for _, r := range d.Rects {
		if r.Width() <= 1 && r.Height() <= 1 {
			small++
		}
	}
	if float64(small) < 0.99*float64(d.Len()) {
		t.Errorf("ca_road: only %d/%d objects are sub-cell; want nearly all", small, d.Len())
	}
}

func TestPaperSize(t *testing.T) {
	if PaperSize("sp_skew") != 1_000_000 || PaperSize("adl") != 2_335_840 ||
		PaperSize("ca_road") != 2_665_088 || PaperSize("nope") != 0 {
		t.Fatal("PaperSize wrong")
	}
}

func TestRoundTripIO(t *testing.T) {
	d := SzSkew(1234, 99)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Extent != d.Extent || len(got.Rects) != len(d.Rects) {
		t.Fatalf("round trip header mismatch: %v vs %v", got, d)
	}
	for i := range d.Rects {
		if got.Rects[i] != d.Rects[i] {
			t.Fatalf("round trip rect %d mismatch", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	d := SpSkew(100, 5)
	path := filepath.Join(t.TempDir(), "sp.bin")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 || got.Name != "sp_skew" {
		t.Fatalf("Load = %v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("loading missing file must error")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTMAGIC and then some content follows here"),
		"truncated": append(append([]byte{}, magic[:]...), 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Read must error", name)
		}
	}
	// Header claiming an absurd count.
	var buf bytes.Buffer
	d := &Dataset{Name: "x", Extent: DefaultExtent}
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// count is the last 8 bytes of the header for an empty dataset.
	for i := len(raw) - 8; i < len(raw); i++ {
		raw[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("absurd count must error")
	}
}

func TestSummarizeAndRender(t *testing.T) {
	d := ADLLike(2000, 3)
	s := Summarize(d)
	if s.Count != 2000 || s.MaxArea <= 0 || s.MeanArea <= 0 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.AreaP50 > s.AreaP90 || s.AreaP90 > s.AreaP99 || s.AreaP99 > s.MaxArea {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
	txt := s.String()
	for _, want := range []string{"adl", "width histogram", "area mean"} {
		if !strings.Contains(txt, want) {
			t.Errorf("summary text missing %q:\n%s", want, txt)
		}
	}
	grid := CenterGrid(d, 30, 15)
	art := RenderCenterGrid(grid)
	if lines := strings.Count(art, "\n"); lines != 15 {
		t.Errorf("render has %d lines, want 15", lines)
	}
	// Empty dataset edge cases.
	empty := &Dataset{Name: "e", Extent: DefaultExtent}
	if s := Summarize(empty); s.Count != 0 {
		t.Error("empty summary wrong")
	}
	if g := CenterGrid(empty, 4, 4); len(g) != 4 {
		t.Error("empty center grid wrong")
	}
}
