package dataset

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary captures the distributional characteristics plotted in Figure 12
// of the paper: how large the objects are and how skewed their placement is.
type Summary struct {
	Name        string
	Count       int
	Points      int     // degenerate objects (zero area)
	MeanArea    float64 // over all objects
	MaxArea     float64
	AreaP50     float64
	AreaP90     float64
	AreaP99     float64
	MeanWidth   float64
	MeanHeight  float64
	LargeShare  float64 // fraction with area >= 100 (10x10 units)
	WidthCounts []WidthBucket
}

// WidthBucket is one bar of the width histogram (Figure 12(b)).
type WidthBucket struct {
	Lo, Hi float64
	Count  int
}

// Summarize computes a Summary of the dataset. Width buckets are
// logarithmic from 1 to the extent width, mirroring the paper's Zipf plot.
func Summarize(d *Dataset) Summary {
	s := Summary{Name: d.Name, Count: len(d.Rects)}
	if s.Count == 0 {
		return s
	}
	areas := make([]float64, 0, len(d.Rects))
	var sumArea, sumW, sumH float64
	large := 0
	for _, r := range d.Rects {
		a := r.Area()
		areas = append(areas, a)
		sumArea += a
		sumW += r.Width()
		sumH += r.Height()
		if a == 0 {
			s.Points++
		}
		if a >= 100 {
			large++
		}
		if a > s.MaxArea {
			s.MaxArea = a
		}
	}
	sort.Float64s(areas)
	q := func(p float64) float64 {
		idx := int(p * float64(len(areas)-1))
		return areas[idx]
	}
	s.MeanArea = sumArea / float64(s.Count)
	s.MeanWidth = sumW / float64(s.Count)
	s.MeanHeight = sumH / float64(s.Count)
	s.AreaP50, s.AreaP90, s.AreaP99 = q(0.50), q(0.90), q(0.99)
	s.LargeShare = float64(large) / float64(s.Count)

	// Log-spaced width buckets: [0,1), [1,2), [2,4), ... up to extent width.
	maxW := d.Extent.Width()
	bounds := []float64{0, 1}
	for bounds[len(bounds)-1] < maxW {
		bounds = append(bounds, bounds[len(bounds)-1]*2)
	}
	counts := make([]int, len(bounds)-1)
	for _, r := range d.Rects {
		w := r.Width()
		k := 0
		for k < len(counts)-1 && w >= bounds[k+1] {
			k++
		}
		counts[k]++
	}
	for k, c := range counts {
		s.WidthCounts = append(s.WidthCounts, WidthBucket{Lo: bounds[k], Hi: bounds[k+1], Count: c})
	}
	return s
}

// String renders the summary as a small report.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d objects (%d points, %.2f%% with area>=100)\n",
		s.Name, s.Count, s.Points, 100*s.LargeShare)
	fmt.Fprintf(&b, "  area mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.1f\n",
		s.MeanArea, s.AreaP50, s.AreaP90, s.AreaP99, s.MaxArea)
	fmt.Fprintf(&b, "  mean width=%.3f mean height=%.3f\n", s.MeanWidth, s.MeanHeight)
	fmt.Fprintf(&b, "  width histogram:\n")
	maxCount := 0
	for _, wb := range s.WidthCounts {
		if wb.Count > maxCount {
			maxCount = wb.Count
		}
	}
	for _, wb := range s.WidthCounts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", int(math.Ceil(40*float64(wb.Count)/float64(maxCount))))
		}
		fmt.Fprintf(&b, "    [%6.1f,%6.1f) %9d %s\n", wb.Lo, wb.Hi, wb.Count, bar)
	}
	return b.String()
}

// CenterGrid returns a coarse rows×cols occupancy grid of object centers,
// the data behind Figure 12(a)'s center-distribution plot. Cell (0,0) is
// the south-west corner.
func CenterGrid(d *Dataset, cols, rows int) [][]int {
	out := make([][]int, rows)
	for j := range out {
		out[j] = make([]int, cols)
	}
	if len(d.Rects) == 0 {
		return out
	}
	w := d.Extent.Width() / float64(cols)
	h := d.Extent.Height() / float64(rows)
	for _, r := range d.Rects {
		c := r.Center()
		i := int((c.X - d.Extent.XMin) / w)
		j := int((c.Y - d.Extent.YMin) / h)
		if i < 0 {
			i = 0
		}
		if i >= cols {
			i = cols - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= rows {
			j = rows - 1
		}
		out[j][i]++
	}
	return out
}

// RenderCenterGrid draws an occupancy grid as ASCII art, darkest character
// for the densest cell. Rows are rendered north-up.
func RenderCenterGrid(g [][]int) string {
	shades := []byte(" .:-=+*#%@")
	maxV := 0
	for _, row := range g {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	var b strings.Builder
	for j := len(g) - 1; j >= 0; j-- {
		for _, v := range g[j] {
			k := 0
			if maxV > 0 && v > 0 {
				k = 1 + int(float64(len(shades)-2)*float64(v)/float64(maxV))
				if k > len(shades)-1 {
					k = len(shades) - 1
				}
			}
			b.WriteByte(shades[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
