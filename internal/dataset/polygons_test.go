package dataset

import "testing"

func TestPolygonize(t *testing.T) {
	d := SpSkew(500, 7)
	pd := Polygonize(d, 7, 0.25, 0.2)
	if pd.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", pd.Len(), d.Len())
	}
	rects := 0
	for i, p := range pd.Polys {
		if !p.Valid() {
			t.Fatalf("polygon %d invalid: %v", i, p)
		}
		// Every vertex stays inside the source rectangle (and so inside
		// the extent).
		src := d.Rects[i]
		for _, v := range p {
			if v.X < src.XMin-1e-9 || v.X > src.XMax+1e-9 || v.Y < src.YMin-1e-9 || v.Y > src.YMax+1e-9 {
				t.Fatalf("polygon %d vertex %v escapes source rect %v", i, v, src)
			}
		}
		if len(p) == 4 && p.MBR() == src {
			rects++
		}
	}
	if rects == 0 {
		t.Error("rectFrac 0.2 produced no exact rectangles")
	}
	// Deterministic given the seed.
	again := Polygonize(d, 7, 0.25, 0.2)
	for i := range pd.Polys {
		for k, v := range pd.Polys[i] {
			if again.Polys[i][k] != v {
				t.Fatalf("polygon %d not deterministic", i)
			}
		}
	}
	if diff := Polygonize(d, 8, 0.25, 0.2); func() bool {
		for i := range pd.Polys {
			if len(diff.Polys[i]) != len(pd.Polys[i]) {
				return false
			}
			for k := range pd.Polys[i] {
				if diff.Polys[i][k] != pd.Polys[i][k] {
					return false
				}
			}
		}
		return true
	}() {
		t.Error("different seeds produced identical polygons")
	}
	if pd.String() == "" {
		t.Error("String empty")
	}
}
