package dataset

import (
	"bytes"
	"testing"
)

// FuzzRead drives the dataset parser with arbitrary bytes: it must never
// panic and must either fail cleanly or produce a dataset that round-trips.
func FuzzRead(f *testing.F) {
	// Seed with a valid payload and a few near-misses.
	valid := SzSkew(50, 1)
	var buf bytes.Buffer
	if err := valid.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SPHIST01"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	truncated := append([]byte(nil), buf.Bytes()[:buf.Len()/2]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent and re-writable.
		if !d.Extent.Valid() {
			t.Fatalf("accepted dataset with invalid extent %v", d.Extent)
		}
		for i, r := range d.Rects {
			if !r.Valid() {
				t.Fatalf("accepted invalid rect %d: %v", i, r)
			}
		}
		var out bytes.Buffer
		if err := d.Write(&out); err != nil {
			t.Fatalf("re-writing accepted dataset: %v", err)
		}
		d2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-reading accepted dataset: %v", err)
		}
		if d2.Name != d.Name || len(d2.Rects) != len(d.Rects) {
			t.Fatalf("round trip changed the dataset")
		}
	})
}
