// Package dataset provides the spatial datasets of the paper's evaluation
// (§6.1.1) and tooling around them: deterministic synthetic generators for
// sp_skew and sz_skew, synthetic stand-ins for the proprietary adl and
// ca_road datasets (see DESIGN.md for the substitution rationale), a
// compact binary serialization, and summary statistics.
//
// All datasets live in the paper's 360×180 data space by default and every
// generator is deterministic given its seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"spatialhist/internal/geom"
)

// DefaultExtent is the paper's 360×180 world space.
var DefaultExtent = geom.Rect{XMin: 0, YMin: 0, XMax: 360, YMax: 180}

// Dataset is a named collection of object MBRs within an extent.
type Dataset struct {
	Name   string
	Extent geom.Rect
	Rects  []geom.Rect
}

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.Rects) }

// String implements fmt.Stringer.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d objects in %v", d.Name, len(d.Rects), d.Extent)
}

// clip clamps r into the extent, preserving at least a degenerate rectangle
// on the boundary for objects generated partially outside.
func clip(r, extent geom.Rect) geom.Rect {
	c, _ := r.Clip(extent)
	return c
}

// SpSkew generates the sp_skew dataset of §6.1.1: n rectangular objects of
// fixed size 3.6×1.8 whose centers exhibit significant spatial skew. The
// paper's figure shows dense clusters over a sparse background; we draw 80%
// of the centers from a mixture of Gaussian clusters and 20% uniformly.
//
// The fixed 3.6×1.8 size is load-bearing for Figure 14(a): objects can only
// cross a query when the tile size drops below 4×4.
func SpSkew(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	const w, h = 3.6, 1.8
	ext := DefaultExtent

	// Cluster centers loosely mimic populated regions of a world map.
	type cluster struct {
		cx, cy, sx, sy, weight float64
	}
	clusters := []cluster{
		{250, 120, 25, 14, 0.25}, // large eurasian blob
		{90, 110, 14, 10, 0.20},  // north american blob
		{120, 60, 10, 8, 0.12},   // south american blob
		{200, 70, 12, 10, 0.13},  // african blob
		{310, 50, 8, 6, 0.10},    // oceanian blob
	}
	var cum []float64
	total := 0.0
	for _, c := range clusters {
		total += c.weight
		cum = append(cum, total)
	}
	clusterMass := 0.8

	rects := make([]geom.Rect, 0, n)
	for len(rects) < n {
		var cx, cy float64
		if r.Float64() < clusterMass {
			u := r.Float64() * total
			k := 0
			for k < len(cum)-1 && u > cum[k] {
				k++
			}
			c := clusters[k]
			cx = c.cx + r.NormFloat64()*c.sx
			cy = c.cy + r.NormFloat64()*c.sy
		} else {
			cx = r.Float64() * ext.Width()
			cy = r.Float64() * ext.Height()
		}
		obj := geom.RectFromCenter(geom.Point{X: cx, Y: cy}, w, h)
		if !obj.Intersects(ext) {
			continue // resample centers that strayed outside
		}
		rects = append(rects, clip(obj, ext))
	}
	return &Dataset{Name: "sp_skew", Extent: ext, Rects: rects}
}

// SzSkewExponent is the decay exponent of the sz_skew side-length
// distribution (pdf ∝ side^-s on [1, 180]). The value 2.0 keeps a heavy
// head of unit-sized squares with a significant tail of large objects, the
// regime the paper describes: all three relations contains/contained/
// overlap well represented (at Q10, ΣN_cd and ΣN_cs are the same order).
const SzSkewExponent = 2.0

// SzSkew generates the sz_skew dataset of §6.1.1: n square objects with
// centers uniformly distributed in the space and side lengths following a
// Zipf (continuous power-law) distribution between 1.0 and 180.0. The
// significant number of large objects makes all three Level 2 relations
// well represented, which is what breaks the N_cd = 0 assumption of
// S-EulerApprox in Figure 14(b).
func SzSkew(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	ext := DefaultExtent
	// Inverse-CDF sampling of pdf ∝ x^-s truncated to [1, 180].
	const lo, hi = 1.0, 180.0
	a := 1.0 - SzSkewExponent
	loA, hiA := math.Pow(lo, a), math.Pow(hi, a)
	rects := make([]geom.Rect, 0, n)
	for len(rects) < n {
		side := math.Pow(loA+r.Float64()*(hiA-loA), 1/a)
		cx := r.Float64() * ext.Width()
		cy := r.Float64() * ext.Height()
		obj := geom.RectFromCenter(geom.Point{X: cx, Y: cy}, side, side)
		rects = append(rects, clip(obj, ext))
	}
	return &Dataset{Name: "sz_skew", Extent: ext, Rects: rects}
}

// ADLLike generates a synthetic stand-in for the Alexandria Digital Library
// dataset: a mixture ranging from point records to state/country/world-map
// MBRs, clustered around library "sites". The mixture is calibrated to the
// paper's qualitative description ("ranging from point data to large
// objects such as state, country and world maps"): mostly small objects
// with a significant tail of large ones, the regime where S-EulerApprox
// fails on N_cs but EulerApprox and M-EulerApprox recover.
func ADLLike(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	ext := DefaultExtent

	// Sites around which records cluster.
	const sites = 40
	siteX := make([]float64, sites)
	siteY := make([]float64, sites)
	for i := range siteX {
		siteX[i] = r.Float64() * ext.Width()
		siteY[i] = r.Float64() * ext.Height()
	}

	center := func() (float64, float64) {
		if r.Float64() < 0.7 {
			k := r.Intn(sites)
			return siteX[k] + r.NormFloat64()*12, siteY[k] + r.NormFloat64()*8
		}
		return r.Float64() * ext.Width(), r.Float64() * ext.Height()
	}

	rects := make([]geom.Rect, 0, n)
	for len(rects) < n {
		cx, cy := center()
		var w, h float64
		switch p := r.Float64(); {
		case p < 0.48:
			// Point records (photographs, gazetteer entries).
			w, h = 0, 0
		case p < 0.88:
			// Local maps: log-normal around ~0.5 units.
			s := math.Exp(r.NormFloat64()*0.8 - 0.7)
			w, h = s, s*(0.5+r.Float64())
		case p < 0.975:
			// City/district maps.
			w = 2 + r.Float64()*8
			h = 1.5 + r.Float64()*6
		case p < 0.997:
			// Regional/state maps.
			w = 10 + r.Float64()*30
			h = 7 + r.Float64()*20
		case p < 0.9998:
			// Country/continent maps.
			w = 40 + r.Float64()*110
			h = 25 + r.Float64()*65
		default:
			// World and hemisphere maps.
			w = 180 + r.Float64()*180
			h = 90 + r.Float64()*90
		}
		obj := geom.RectFromCenter(geom.Point{X: cx, Y: cy}, w, h)
		if !obj.Intersects(ext) {
			continue
		}
		rects = append(rects, clip(obj, ext))
	}
	return &Dataset{Name: "adl", Extent: ext, Rects: rects}
}

// CARoadLike generates a synthetic stand-in for the ca_road dataset: road
// segments produced by random-walk polylines ("roads") plus dense local
// street stubs, normalized to the 360×180 space. Like the TIGER extract,
// virtually every object is a short, thin segment MBR, the regime where
// S-EulerApprox is near-exact for every query size (Figure 14).
func CARoadLike(n int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	ext := DefaultExtent
	rects := make([]geom.Rect, 0, n)

	// Long-haul roads: random walks emitting one segment MBR per step.
	for len(rects) < n*7/10 {
		x := r.Float64() * ext.Width()
		y := r.Float64() * ext.Height()
		dir := r.Float64() * 2 * math.Pi
		steps := 20 + r.Intn(200)
		for s := 0; s < steps && len(rects) < n; s++ {
			dir += (r.Float64() - 0.5) * 0.6
			segLen := 0.05 + r.Float64()*0.45
			nx := x + math.Cos(dir)*segLen
			ny := y + math.Sin(dir)*segLen
			seg := geom.NewRect(x, y, nx, ny)
			if seg.Intersects(ext) {
				rects = append(rects, clip(seg, ext))
			}
			x, y = nx, ny
			if !ext.ContainsPoint(geom.Point{X: x, Y: y}) {
				break // the road left the space
			}
		}
	}
	// Local streets: tiny axis-aligned stubs clustered in towns.
	for len(rects) < n {
		tx := r.Float64() * ext.Width()
		ty := r.Float64() * ext.Height()
		town := 50 + r.Intn(400)
		for s := 0; s < town && len(rects) < n; s++ {
			x := tx + r.NormFloat64()*1.5
			y := ty + r.NormFloat64()*1.5
			l := 0.02 + r.Float64()*0.2
			var seg geom.Rect
			if r.Intn(2) == 0 {
				seg = geom.NewRect(x, y, x+l, y)
			} else {
				seg = geom.NewRect(x, y, x, y+l)
			}
			if seg.Intersects(ext) {
				rects = append(rects, clip(seg, ext))
			}
		}
	}
	return &Dataset{Name: "ca_road", Extent: ext, Rects: rects}
}

// Names lists the datasets Generate accepts, in the paper's order.
func Names() []string { return []string{"sp_skew", "sz_skew", "adl", "ca_road"} }

// Generate produces one of the paper's four datasets by name.
func Generate(name string, n int, seed int64) (*Dataset, error) {
	switch name {
	case "sp_skew":
		return SpSkew(n, seed), nil
	case "sz_skew":
		return SzSkew(n, seed), nil
	case "adl":
		return ADLLike(n, seed), nil
	case "ca_road":
		return CARoadLike(n, seed), nil
	}
	return nil, fmt.Errorf("dataset: unknown dataset %q (want one of %v)", name, Names())
}

// PaperSize returns the object count the paper used for the named dataset.
func PaperSize(name string) int {
	switch name {
	case "sp_skew", "sz_skew":
		return 1_000_000
	case "adl":
		return 2_335_840
	case "ca_road":
		return 2_665_088
	}
	return 0
}
