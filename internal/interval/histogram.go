package interval

import "fmt"

// Histogram is the 1-d Euler histogram: one +1 bucket per segment and one
// −1 bucket per interior grid point, 2n−1 buckets total, plus the
// cumulative form. For any grid-aligned region, each connected component
// of an object∩region intersection contributes exactly +1 to the sum of
// the buckets inside the region (segments − points = 1 per component, the
// 1-d Euler relation).
type Histogram struct {
	d  *Domain
	l  int     // lattice size 2n−1
	h  []int64 // signed buckets; even index = segment, odd = interior point
	hc []int64 // prefix sums of h
	n  int64
}

// Builder accumulates interval insertions via a difference array.
type Builder struct {
	d    *Domain
	diff []int64
	n    int64
}

// NewBuilder returns a Builder over the domain.
func NewBuilder(d *Domain) *Builder {
	return &Builder{d: d, diff: make([]int64, 2*d.n)}
}

// AddSeg inserts an object already snapped to segments.
func (b *Builder) AddSeg(s Seg) {
	if !s.Valid() || s.I1 < 0 || s.I2 >= b.d.n {
		panic(fmt.Sprintf("interval: seg %v outside domain of %d segments", s, b.d.n))
	}
	b.diff[2*s.I1]++
	b.diff[2*s.I2+1]--
	b.n++
}

// Add snaps [lo, hi] and inserts it, reporting whether the interval was
// inside the domain.
func (b *Builder) Add(lo, hi float64) bool {
	s, ok := b.d.Snap(lo, hi)
	if !ok {
		return false
	}
	b.AddSeg(s)
	return true
}

// Count returns the number of inserted intervals.
func (b *Builder) Count() int64 { return b.n }

// Build finalizes the histogram with its cumulative form.
func (b *Builder) Build() *Histogram {
	l := 2*b.d.n - 1
	h := make([]int64, l)
	var acc int64
	for u := 0; u < l; u++ {
		acc += b.diff[u]
		if u&1 == 1 { // interior point bucket: inverted
			h[u] = -acc
		} else {
			h[u] = acc
		}
	}
	hc := make([]int64, l+1)
	for u := 0; u < l; u++ {
		hc[u+1] = hc[u] + h[u]
	}
	return &Histogram{d: b.d, l: l, h: h, hc: hc, n: b.n}
}

// Domain returns the underlying domain.
func (h *Histogram) Domain() *Domain { return h.d }

// Count returns the number of summarized intervals.
func (h *Histogram) Count() int64 { return h.n }

// StorageBuckets returns the number of buckets kept: 2n−1.
func (h *Histogram) StorageBuckets() int { return h.l }

// Bucket returns the signed value of lattice bucket u.
func (h *Histogram) Bucket(u int) int64 {
	if u < 0 || u >= h.l {
		panic(fmt.Sprintf("interval: bucket %d outside lattice of %d", u, h.l))
	}
	return h.h[u]
}

// Total returns the sum of all buckets, which equals Count by the 1-d
// Euler relation.
func (h *Histogram) Total() int64 { return h.hc[h.l] }

// latticeSum sums buckets u1..u2 inclusive, clamped.
func (h *Histogram) latticeSum(u1, u2 int) int64 {
	if u1 < 0 {
		u1 = 0
	}
	if u2 >= h.l {
		u2 = h.l - 1
	}
	if u1 > u2 {
		return 0
	}
	return h.hc[u2+1] - h.hc[u1]
}

// InsideSum returns the exact number of intervals intersecting query q.
func (h *Histogram) InsideSum(q Seg) int64 { return h.latticeSum(2*q.I1, 2*q.I2) }

// OutsideSum returns the sum of the buckets outside the closed query:
// N_d + N_o + 2·N_cd (a containing interval meets the exterior in two
// components — the 1-d form of the loophole effect is a double count).
func (h *Histogram) OutsideSum(q Seg) int64 {
	return h.Total() - h.latticeSum(2*q.I1-1, 2*q.I2+1)
}

// ContainedIn returns the exact number of intervals contained in a
// boundary-anchored region (one that starts at segment 0 or ends at the
// last segment): such regions cannot be contained or crossed, so the
// S-Euler identity is exact there. It panics for interior regions, where
// the identity would silently be wrong.
func (h *Histogram) ContainedIn(r Seg) int64 {
	if r.I1 != 0 && r.I2 != h.d.n-1 {
		panic(fmt.Sprintf("interval: ContainedIn(%v) on a non-anchored region", r))
	}
	return h.n - (h.Total() - h.latticeSum(2*r.I1-1, 2*r.I2+1))
}

// Estimate computes Level 2 relation counts for a grid-aligned query.
//
// Exact pieces: n_ii (intersect), N_d (the two exterior sides are
// boundary-anchored, so the number of intervals fully inside each is
// exact), and the difference N_cs − N_cd = n_ii − (n'_ei − N_d).
// The split of that difference is the one genuinely unknown quantity with
// O(n) storage (Theorem 3.1); Estimate resolves it with the S-Euler-style
// assumption that the smaller of the two is zero. LengthPartitioned
// removes the assumption for every group not straddling the query length.
func (h *Histogram) Estimate(q Seg) Counts {
	nii := h.InsideSum(q)
	neiP := h.OutsideSum(q)
	var nd int64
	if q.I1 > 0 {
		nd += h.ContainedIn(Seg{I1: 0, I2: q.I1 - 1})
	}
	if q.I2 < h.d.n-1 {
		nd += h.ContainedIn(Seg{I1: q.I2 + 1, I2: h.d.n - 1})
	}
	// n'_ei = N_d + N_o + 2·N_cd and n_ii = N_cs + N_cd + N_o give
	// diff = N_cs − N_cd exactly.
	diff := nii - (neiP - nd)
	var cs, cd int64
	if diff >= 0 {
		cs = diff
	} else {
		cd = -diff
	}
	return Counts{
		Disjoint:  nd,
		Contains:  cs,
		Contained: cd,
		Overlap:   nii - cs - cd,
	}
}
