package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDomainPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero n":     func() { NewDomain(0, 10, 0) },
		"degenerate": func() { NewDomain(5, 5, 10) },
		"inverted":   func() { NewDomain(10, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: must panic", name)
				}
			}()
			f()
		}()
	}
	d := NewDomain(0, 100, 50)
	if d.N() != 50 || d.Lo() != 0 || d.Hi() != 100 || d.SegmentWidth() != 2 {
		t.Fatalf("domain accessors broken: %+v", d)
	}
}

func TestSnap(t *testing.T) {
	d := NewDomain(0, 10, 10)
	cases := []struct {
		lo, hi float64
		want   Seg
		ok     bool
	}{
		{0.2, 0.8, Seg{0, 0}, true},
		{1, 3, Seg{1, 2}, true}, // shrinking convention
		{0.5, 2.5, Seg{0, 2}, true},
		{5, 5, Seg{4, 4}, true},     // point on a line -> lower segment
		{5.5, 5.5, Seg{5, 5}, true}, // point inside a segment
		{0, 0, Seg{0, 0}, true},     // point at domain minimum
		{-5, 15, Seg{0, 9}, true},   // clipped
		{20, 30, Seg{}, false},      // outside
		{3, 2, Seg{}, false},        // inverted
	}
	for _, c := range cases {
		got, ok := d.Snap(c.lo, c.hi)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Snap(%g,%g) = %v/%t, want %v/%t", c.lo, c.hi, got, ok, c.want, c.ok)
		}
	}
}

func randSegs(r *rand.Rand, n, count int) []Seg {
	out := make([]Seg, count)
	for k := range out {
		i1 := r.Intn(n)
		out[k] = Seg{I1: i1, I2: i1 + r.Intn(n-i1)}
	}
	return out
}

func buildHist(d *Domain, segs []Seg) *Histogram {
	b := NewBuilder(d)
	for _, s := range segs {
		b.AddSeg(s)
	}
	return b.Build()
}

func TestHistogramInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	f := func() bool {
		n := 1 + r.Intn(30)
		d := NewDomain(0, float64(n), n)
		segs := randSegs(r, n, r.Intn(60))
		h := buildHist(d, segs)
		return h.Total() == int64(len(segs)) && h.Count() == int64(len(segs)) &&
			h.StorageBuckets() == 2*n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInsideSumExact(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(40)
		d := NewDomain(0, float64(n), n)
		segs := randSegs(r, n, 80)
		h := buildHist(d, segs)
		for qt := 0; qt < 20; qt++ {
			i1 := r.Intn(n)
			q := Seg{I1: i1, I2: i1 + r.Intn(n-i1)}
			want := EvaluateQuery(segs, q)
			if got := h.InsideSum(q); got != want.Total()-want.Disjoint {
				t.Fatalf("InsideSum(%v) = %d, want %d", q, got, want.Total()-want.Disjoint)
			}
		}
	}
}

func TestOutsideSumDoubleCountsContaining(t *testing.T) {
	d := NewDomain(0, 10, 10)
	q := Seg{I1: 4, I2: 5}
	cases := []struct {
		name string
		seg  Seg
		want int64
	}{
		{"containing counted twice", Seg{1, 8}, 2},
		{"overlap counted once", Seg{3, 4}, 1},
		{"disjoint counted once", Seg{0, 1}, 1},
		{"contained counted zero", Seg{4, 4}, 0},
	}
	for _, c := range cases {
		h := buildHist(d, []Seg{c.seg})
		if got := h.OutsideSum(q); got != c.want {
			t.Errorf("%s: OutsideSum = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestEstimateExactWhenOneSidedOrDisjoint(t *testing.T) {
	// N_d is always exact; when a dataset has no containing (or no
	// contained) intervals w.r.t. the query, everything is exact.
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 300; trial++ {
		n := 4 + r.Intn(30)
		d := NewDomain(0, float64(n), n)
		i1 := r.Intn(n - 1)
		q := Seg{I1: i1, I2: i1 + 1 + r.Intn(n-i1-1)}
		var segs []Seg
		onlyShort := r.Intn(2) == 0
		for k := 0; k < 60; k++ {
			s := randSegs(r, n, 1)[0]
			if onlyShort && s.Len() > q.Len() {
				continue // no containing intervals possible
			}
			if !onlyShort && s.Len() < q.Len()+2 {
				continue // no contained intervals possible
			}
			segs = append(segs, s)
		}
		h := buildHist(d, segs)
		got := h.Estimate(q)
		want := EvaluateQuery(segs, q)
		if got != (Counts{Disjoint: want.Disjoint, Contains: want.Contains,
			Contained: want.Contained, Overlap: want.Overlap}) {
			t.Fatalf("Estimate(%v) = %+v, want %+v (onlyShort=%t)", q, got, want, onlyShort)
		}
	}
}

func TestEstimateDifferenceAlwaysExact(t *testing.T) {
	// For arbitrary datasets the difference N_cs − N_cd is exact even when
	// the split is heuristic, and N_d is exact.
	r := rand.New(rand.NewSource(84))
	for trial := 0; trial < 300; trial++ {
		n := 4 + r.Intn(30)
		d := NewDomain(0, float64(n), n)
		segs := randSegs(r, n, 80)
		h := buildHist(d, segs)
		i1 := r.Intn(n)
		q := Seg{I1: i1, I2: i1 + r.Intn(n-i1)}
		got := h.Estimate(q)
		want := EvaluateQuery(segs, q)
		if got.Disjoint != want.Disjoint {
			t.Fatalf("N_d = %d, want %d", got.Disjoint, want.Disjoint)
		}
		if got.Contains-got.Contained != want.Contains-want.Contained {
			t.Fatalf("N_cs−N_cd = %d, want %d",
				got.Contains-got.Contained, want.Contains-want.Contained)
		}
		if got.Total() != want.Total() {
			t.Fatalf("totals diverge")
		}
	}
}

func TestContainedInAnchoredOnly(t *testing.T) {
	d := NewDomain(0, 10, 10)
	h := buildHist(d, []Seg{{1, 2}, {0, 5}, {7, 9}})
	if got := h.ContainedIn(Seg{I1: 0, I2: 5}); got != 2 {
		t.Fatalf("ContainedIn(left) = %d, want 2", got)
	}
	if got := h.ContainedIn(Seg{I1: 6, I2: 9}); got != 1 {
		t.Fatalf("ContainedIn(right) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("interior region must panic")
		}
	}()
	h.ContainedIn(Seg{I1: 2, I2: 5})
}

func TestLengthPartitionedValidation(t *testing.T) {
	d := NewDomain(0, 10, 10)
	for name, lens := range map[string][]int{
		"empty":      {},
		"not one":    {2, 4},
		"not sorted": {1, 5, 3},
		"duplicate":  {1, 3, 3},
	} {
		if _, err := NewLengthPartitioned(d, lens, nil); err == nil {
			t.Errorf("%s: must error", name)
		}
	}
}

func TestLengthPartitionedExactWithFullThresholds(t *testing.T) {
	// With a threshold at qlen+1 for every query length used, no group
	// straddles any query and every count is exact.
	r := rand.New(rand.NewSource(85))
	n := 24
	d := NewDomain(0, float64(n), n)
	segs := randSegs(r, n, 500)
	qlens := []int{2, 4, 8}
	lens := []int{1, 3, 5, 9} // thresholds at qlen+1 for each
	lp, err := NewLengthPartitioned(d, lens, segs)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Count() != 500 || len(lp.Histograms()) != 4 {
		t.Fatalf("partitioning broken: %d intervals, %d groups", lp.Count(), len(lp.Histograms()))
	}
	if lp.StorageBuckets() != 4*(2*n-1) {
		t.Fatalf("storage = %d", lp.StorageBuckets())
	}
	for _, ql := range qlens {
		for i1 := 0; i1+ql <= n; i1++ {
			q := Seg{I1: i1, I2: i1 + ql - 1}
			got := lp.Estimate(q)
			want := EvaluateQuery(segs, q)
			if got != want {
				t.Fatalf("Q len %d at %d: got %+v, want %+v", ql, i1, got, want)
			}
		}
	}
}

func TestLengthPartitionedBeatsSingle(t *testing.T) {
	// On mixed-length data, partitioning reduces the contains error of the
	// heuristic split.
	r := rand.New(rand.NewSource(86))
	n := 50
	d := NewDomain(0, float64(n), n)
	segs := randSegs(r, n, 2000)
	single := buildHist(d, segs)
	lp, err := NewLengthPartitioned(d, []int{1, 3, 6, 11, 21}, segs)
	if err != nil {
		t.Fatal(err)
	}
	var errSingle, errLP, sum int64
	for i1 := 0; i1+8 <= n; i1++ {
		q := Seg{I1: i1, I2: i1 + 7}
		want := EvaluateQuery(segs, q)
		sum += want.Contains
		errSingle += abs64(single.Estimate(q).Contains - want.Contains)
		errLP += abs64(lp.Estimate(q).Contains - want.Contains)
	}
	if sum == 0 {
		t.Fatal("degenerate workload")
	}
	if errLP >= errSingle {
		t.Fatalf("partitioned error %d not better than single %d", errLP, errSingle)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestOracleMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(87))
	n := 30
	d := NewDomain(0, float64(n), n)
	segs := randSegs(r, n, 300)
	o := NewOracle(d, segs)
	if o.StorageCells() != n*n {
		t.Fatalf("StorageCells = %d", o.StorageCells())
	}
	for trial := 0; trial < 500; trial++ {
		i1 := r.Intn(n)
		q := Seg{I1: i1, I2: i1 + r.Intn(n-i1)}
		if got, want := o.Evaluate(q), EvaluateQuery(segs, q); got != want {
			t.Fatalf("Oracle(%v) = %+v, want %+v", q, got, want)
		}
	}
}

func TestBuilderAddAndPanics(t *testing.T) {
	d := NewDomain(0, 10, 10)
	b := NewBuilder(d)
	if !b.Add(1.5, 3.5) {
		t.Fatal("in-domain Add must succeed")
	}
	if b.Add(20, 30) {
		t.Fatal("outside Add must fail")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d", b.Count())
	}
	h := b.Build()
	if h.Domain() != d || h.Total() != 1 {
		t.Fatal("histogram accessors broken")
	}
	if h.Bucket(0) != 0 || h.Bucket(2) != 1 {
		t.Fatalf("buckets wrong: %d %d", h.Bucket(0), h.Bucket(2))
	}
	for name, f := range map[string]func(){
		"seg outside":  func() { b.AddSeg(Seg{I1: 0, I2: 10}) },
		"seg inverted": func() { b.AddSeg(Seg{I1: 3, I2: 2}) },
		"bucket range": func() { h.Bucket(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: must panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSegHelpers(t *testing.T) {
	s := Seg{I1: 2, I2: 5}
	if s.Len() != 4 || !s.Valid() || s.String() == "" {
		t.Fatal("Seg helpers broken")
	}
	if !s.Contains(Seg{3, 4}) || s.Contains(Seg{0, 3}) {
		t.Fatal("Contains broken")
	}
	if !(Seg{3, 4}).ContainsStrict(Seg{2, 5}) || (Seg{2, 4}).ContainsStrict(Seg{2, 5}) {
		t.Fatal("ContainsStrict broken")
	}
	if !s.Intersects(Seg{5, 9}) || s.Intersects(Seg{6, 9}) {
		t.Fatal("Intersects broken")
	}
}
