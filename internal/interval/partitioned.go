package interval

import (
	"fmt"
	"sort"

	"spatialhist/internal/prefixsum"
)

// LengthPartitioned is the 1-d analogue of M-EulerApprox: one histogram per
// interval-length group. Because Histogram.Estimate is exact whenever a
// group cannot contribute both contained and containing intervals, a query
// of length L is answered exactly by every group except the one straddling
// L — and a threshold at L+1 removes even that. Groups are defined by
// snapped segment lengths: group i holds the intervals with
// lens[i] ≤ segments < lens[i+1] (the last group is open-ended, the first
// also takes anything shorter than lens[0]).
type LengthPartitioned struct {
	d     *Domain
	lens  []int
	hists []*Histogram
	n     int64
}

// NewLengthPartitioned builds the per-group histograms. lens must be
// ascending, start at 1, and contain no duplicates.
func NewLengthPartitioned(d *Domain, lens []int, segs []Seg) (*LengthPartitioned, error) {
	if len(lens) == 0 {
		return nil, fmt.Errorf("interval: need at least one length threshold")
	}
	if lens[0] != 1 {
		return nil, fmt.Errorf("interval: first length threshold must be 1, got %d", lens[0])
	}
	if !sort.IntsAreSorted(lens) {
		return nil, fmt.Errorf("interval: thresholds %v not ascending", lens)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] == lens[i-1] {
			return nil, fmt.Errorf("interval: duplicate threshold %d", lens[i])
		}
	}
	builders := make([]*Builder, len(lens))
	for i := range builders {
		builders[i] = NewBuilder(d)
	}
	lp := &LengthPartitioned{d: d, lens: append([]int(nil), lens...)}
	for _, s := range segs {
		builders[lp.groupOf(s.Len())].AddSeg(s)
	}
	for _, b := range builders {
		h := b.Build()
		lp.hists = append(lp.hists, h)
		lp.n += h.Count()
	}
	return lp, nil
}

// groupOf returns the histogram index for an interval spanning the given
// number of segments.
func (lp *LengthPartitioned) groupOf(segLen int) int {
	i := sort.SearchInts(lp.lens, segLen)
	if i < len(lp.lens) && lp.lens[i] == segLen {
		return i
	}
	if i == 0 {
		return 0
	}
	return i - 1
}

// Count returns the number of summarized intervals.
func (lp *LengthPartitioned) Count() int64 { return lp.n }

// StorageBuckets returns the total buckets across groups.
func (lp *LengthPartitioned) StorageBuckets() int {
	total := 0
	for _, h := range lp.hists {
		total += h.StorageBuckets()
	}
	return total
}

// Histograms returns the per-group histograms, shortest group first.
func (lp *LengthPartitioned) Histograms() []*Histogram {
	return append([]*Histogram(nil), lp.hists...)
}

// Estimate sums the per-group estimates. It is exact when no group's
// length range straddles the query length (some members ≤ len(q), others
// ≥ len(q)+2).
func (lp *LengthPartitioned) Estimate(q Seg) Counts {
	var out Counts
	for _, h := range lp.hists {
		c := h.Estimate(q)
		out.Disjoint += c.Disjoint
		out.Contains += c.Contains
		out.Contained += c.Contained
		out.Overlap += c.Overlap
	}
	return out
}

// Oracle answers exact 1-d Level 2 counts for arbitrary grid-aligned
// queries by treating intervals as 2-d points (start, end) over a 2-d
// prefix cube — the n(n+1)/2-class structure Theorem 3.1 proves necessary
// for exact contains, specialized to one dimension.
type Oracle struct {
	d    *Domain
	cube *prefixsum.Sum2D
	n    int64
}

// NewOracle builds the exact structure, O(n²) storage.
func NewOracle(d *Domain, segs []Seg) *Oracle {
	src := make([]int64, d.n*d.n)
	for _, s := range segs {
		src[s.I1*d.n+s.I2]++
	}
	return &Oracle{d: d, cube: prefixsum.NewSum2D(src, d.n, d.n), n: int64(len(segs))}
}

// StorageCells returns the oracle's storage cost, n².
func (o *Oracle) StorageCells() int { return o.d.n * o.d.n }

// Evaluate returns the exact Level 2 counts for query q.
func (o *Oracle) Evaluate(q Seg) Counts {
	n := o.d.n
	contains := o.cube.RangeSum(q.I1, 0, n-1, q.I2)
	contained := o.cube.RangeSum(0, q.I2+1, q.I1-1, n-1)
	intersect := o.cube.RangeSum(0, q.I1, q.I2, n-1)
	return Counts{
		Disjoint:  o.n - intersect,
		Contains:  contains,
		Contained: contained,
		Overlap:   intersect - contains - contained,
	}
}
