// Package interval applies the paper's machinery to 1-dimensional range
// data — the setting §3 uses to derive the storage lower bound. Objects
// are intervals (e.g. the date ranges of archive records) snapped to an
// n-segment gridding of a 1-d domain under the same shrinking convention
// as the 2-d library, and a 1-d Euler histogram answers Level 2 relation
// counts for grid-aligned interval queries.
//
// The 1-d case is instructive because the algebra is stronger than in 2-d:
//
//   - The two sides of a query's exterior are boundary-anchored intervals,
//     so the number of objects disjoint from the query (fully inside one
//     side) is EXACT — there is no 1-d analogue of the crossover problem
//     for those sums.
//   - There are no holes in 1-d: an object containing the query meets the
//     exterior in two components and is counted twice (not zero times) by
//     the outside sum. The loophole effect becomes a double-count.
//   - Consequently N_cs − N_cd is exactly determined by the histogram, and
//     the only ambiguity is how to split the difference. Histograms
//     partitioned by interval length resolve it: any group whose lengths
//     are all shorter than the query has N_cd = 0, any group all longer
//     has N_cs = 0, and in both cases every count is exact. Only a group
//     straddling the query length needs the heuristic split.
//
// Theorem 3.1 still bites: exact contains for arbitrary lengths needs the
// n(n+1)/2 structure, realized here by Oracle over (start, end) pairs.
package interval

import (
	"fmt"
	"math"
)

// Domain is an equi-width gridding of the 1-d range [Lo, Hi] into n
// segments.
type Domain struct {
	lo, hi float64
	n      int
	w      float64
}

// NewDomain grids [lo, hi] into n segments. It panics on a degenerate
// range or non-positive n: the domain is configuration.
func NewDomain(lo, hi float64, n int) *Domain {
	if n <= 0 {
		panic(fmt.Sprintf("interval: non-positive segment count %d", n))
	}
	if !(lo < hi) || math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic(fmt.Sprintf("interval: degenerate domain [%g, %g]", lo, hi))
	}
	return &Domain{lo: lo, hi: hi, n: n, w: (hi - lo) / float64(n)}
}

// N returns the number of segments.
func (d *Domain) N() int { return d.n }

// Lo returns the domain minimum.
func (d *Domain) Lo() float64 { return d.lo }

// Hi returns the domain maximum.
func (d *Domain) Hi() float64 { return d.hi }

// SegmentWidth returns the width of one segment.
func (d *Domain) SegmentWidth() float64 { return d.w }

// Seg is an inclusive range of domain segments [I1..I2].
type Seg struct {
	I1, I2 int
}

// Valid reports whether the segment range is ordered.
func (s Seg) Valid() bool { return s.I1 <= s.I2 }

// Len returns the number of segments covered.
func (s Seg) Len() int { return s.I2 - s.I1 + 1 }

// Contains reports whether o's segments are a subset of s's.
func (s Seg) Contains(o Seg) bool { return o.I1 >= s.I1 && o.I2 <= s.I2 }

// ContainsStrict reports whether o strictly contains s with at least one
// segment to spare on both sides — the shrunk-object "contains the query"
// test.
func (s Seg) ContainsStrict(o Seg) bool { return s.I1 >= o.I1+1 && s.I2 <= o.I2-1 }

// Intersects reports whether the two ranges share a segment.
func (s Seg) Intersects(o Seg) bool { return s.I1 <= o.I2 && o.I1 <= s.I2 }

// String implements fmt.Stringer.
func (s Seg) String() string { return fmt.Sprintf("segs[%d..%d]", s.I1, s.I2) }

// Snap converts an interval [lo, hi] to the segments its shrunk interior
// occupies, clipped to the domain; ok is false when the interval lies
// entirely outside. Degenerate intervals (points) are assigned one segment
// like grid.Snap does.
func (d *Domain) Snap(lo, hi float64) (Seg, bool) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
		return Seg{}, false
	}
	if hi < d.lo || lo > d.hi {
		return Seg{}, false
	}
	a := (lo - d.lo) / d.w
	b := (hi - d.lo) / d.w
	if a == b {
		c := int(math.Floor(a))
		if a == math.Floor(a) && c > 0 {
			c--
		}
		c = clamp(c, 0, d.n-1)
		return Seg{I1: c, I2: c}, true
	}
	i1 := clamp(int(math.Floor(a)), 0, d.n-1)
	i2 := clamp(int(math.Ceil(b))-1, 0, d.n-1)
	return Seg{I1: i1, I2: i2}, true
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Counts tallies the Level 2 relations of intervals against one query.
// Fields may be negative in the approximate estimators' outputs.
type Counts struct {
	Disjoint  int64
	Contains  int64 // objects contained in the query
	Contained int64 // objects containing the query
	Overlap   int64
}

// Total returns the sum of the four counts.
func (c Counts) Total() int64 { return c.Disjoint + c.Contains + c.Contained + c.Overlap }

// Rel2 classifies one object segment range against a query range under the
// shrinking convention.
func Rel2(q, o Seg) (disjoint, contains, contained, overlap bool) {
	switch {
	case !q.Intersects(o):
		return true, false, false, false
	case q.Contains(o):
		return false, true, false, false
	case q.ContainsStrict(o):
		return false, false, true, false
	default:
		return false, false, false, true
	}
}

// EvaluateQuery computes exact Level 2 counts by brute force, O(len(segs)).
func EvaluateQuery(segs []Seg, q Seg) Counts {
	var c Counts
	for _, s := range segs {
		d, cs, cd, o := Rel2(q, s)
		switch {
		case d:
			c.Disjoint++
		case cs:
			c.Contains++
		case cd:
			c.Contained++
		case o:
			c.Overlap++
		}
	}
	return c
}
