// Package metrics implements the evaluation metrics of §6.1.3: the average
// relative error of [APR99] used for all accuracy figures, plus scatter
// series for the estimated-vs-exact plots and simple timing aggregation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// AvgRelativeError returns the paper's accuracy metric for a query set:
//
//	( Σ_i |r_i − e_i| ) / ( Σ_i r_i )
//
// where r_i is the exact answer and e_i the estimate. It is NaN when every
// exact answer is zero and the estimates are not (infinite relative error)
// and 0 when both sums are zero. The slices must have equal length.
func AvgRelativeError(exact, est []int64) float64 {
	if len(exact) != len(est) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(exact), len(est)))
	}
	var absErr, sum int64
	for i := range exact {
		d := exact[i] - est[i]
		if d < 0 {
			d = -d
		}
		absErr += d
		sum += exact[i]
	}
	if sum == 0 {
		if absErr == 0 {
			return 0
		}
		return math.NaN()
	}
	return float64(absErr) / float64(sum)
}

// ScatterPoint is one (exact, estimated) pair of the Figure 13/15 plots.
type ScatterPoint struct {
	Exact, Estimated int64
}

// Scatter pairs exact and estimated answers for plotting.
func Scatter(exact, est []int64) []ScatterPoint {
	if len(exact) != len(est) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(exact), len(est)))
	}
	out := make([]ScatterPoint, len(exact))
	for i := range exact {
		out[i] = ScatterPoint{Exact: exact[i], Estimated: est[i]}
	}
	return out
}

// ScatterStats summarizes how tightly a scatter hugs the y = x line.
type ScatterStats struct {
	N               int
	MaxAbsError     int64
	MeanAbsError    float64
	AvgRelError     float64
	WithinPct       float64 // fraction of points within 5% (or ±1) of exact
	ExactMax        int64
	EstimatedMax    int64
	PearsonApprox   float64 // correlation of exact vs estimated
	RegressionSlope float64 // least-squares slope through the origin
}

// Summarize computes ScatterStats for a set of points.
func Summarize(points []ScatterPoint) ScatterStats {
	s := ScatterStats{N: len(points)}
	if len(points) == 0 {
		return s
	}
	var sumAbs float64
	var exact, est []int64
	var within int
	var sxy, sxx, syy, sx, sy float64
	for _, p := range points {
		d := p.Exact - p.Estimated
		if d < 0 {
			d = -d
		}
		if int64(d) > s.MaxAbsError {
			s.MaxAbsError = d
		}
		sumAbs += float64(d)
		if p.Exact > s.ExactMax {
			s.ExactMax = p.Exact
		}
		if p.Estimated > s.EstimatedMax {
			s.EstimatedMax = p.Estimated
		}
		tol := int64(math.Ceil(0.05 * float64(p.Exact)))
		if tol < 1 {
			tol = 1
		}
		if d <= tol {
			within++
		}
		exact = append(exact, p.Exact)
		est = append(est, p.Estimated)
		x, y := float64(p.Exact), float64(p.Estimated)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
	}
	n := float64(len(points))
	s.MeanAbsError = sumAbs / n
	s.AvgRelError = AvgRelativeError(exact, est)
	s.WithinPct = float64(within) / n
	covXY := sxy - sx*sy/n
	varX := sxx - sx*sx/n
	varY := syy - sy*sy/n
	if varX > 0 && varY > 0 {
		s.PearsonApprox = covXY / math.Sqrt(varX*varY)
	}
	if sxx > 0 {
		s.RegressionSlope = sxy / sxx
	}
	return s
}

// Timing aggregates wall-clock measurements of query-set processing
// (Figure 19).
type Timing struct {
	Queries int
	Total   time.Duration
}

// PerQuery returns the mean time per query.
func (t Timing) PerQuery() time.Duration {
	if t.Queries == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Queries)
}

// String implements fmt.Stringer.
func (t Timing) String() string {
	return fmt.Sprintf("%d queries in %v (%v/query)", t.Queries, t.Total, t.PerQuery())
}

// Measure runs f repeatedly (at least once, until minDuration has elapsed)
// and returns the per-run Timing with the best (smallest) total, the usual
// way to get a stable wall-clock number for sub-millisecond workloads.
func Measure(queries int, minDuration time.Duration, f func()) Timing {
	best := time.Duration(math.MaxInt64)
	var elapsed time.Duration
	for runs := 0; runs == 0 || elapsed < minDuration; runs++ {
		start := time.Now()
		f()
		d := time.Since(start)
		elapsed += d
		if d < best {
			best = d
		}
	}
	return Timing{Queries: queries, Total: best}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of the values using the
// nearest-rank method. It panics on an empty slice.
func Quantile(values []float64, p float64) float64 {
	if len(values) == 0 {
		panic("metrics: quantile of empty slice")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
