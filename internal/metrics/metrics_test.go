package metrics

import (
	"math"
	"testing"
	"time"
)

func TestAvgRelativeError(t *testing.T) {
	cases := []struct {
		name  string
		exact []int64
		est   []int64
		want  float64
	}{
		{"perfect", []int64{10, 20}, []int64{10, 20}, 0},
		{"paper formula", []int64{10, 10}, []int64{8, 14}, (2.0 + 4.0) / 20.0},
		{"negative estimates count fully", []int64{10}, []int64{-10}, 2},
		{"all zero exact and est", []int64{0, 0}, []int64{0, 0}, 0},
		{"empty", nil, nil, 0},
	}
	for _, c := range cases {
		if got := AvgRelativeError(c.exact, c.est); got != c.want {
			t.Errorf("%s: AvgRelativeError = %g, want %g", c.name, got, c.want)
		}
	}
	if got := AvgRelativeError([]int64{0}, []int64{5}); !math.IsNaN(got) {
		t.Errorf("zero exact with nonzero estimate = %g, want NaN", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	AvgRelativeError([]int64{1}, []int64{1, 2})
}

func TestScatterAndSummarize(t *testing.T) {
	pts := Scatter([]int64{100, 200, 0}, []int64{105, 190, 1})
	if len(pts) != 3 || pts[1] != (ScatterPoint{Exact: 200, Estimated: 190}) {
		t.Fatalf("Scatter = %v", pts)
	}
	s := Summarize(pts)
	if s.N != 3 || s.MaxAbsError != 10 || s.ExactMax != 200 || s.EstimatedMax != 190 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.MeanAbsError-16.0/3) > 1e-12 {
		t.Errorf("MeanAbsError = %g", s.MeanAbsError)
	}
	// All three points are within 5% (or ±1): 105 vs 100 (5), 190 vs 200
	// (10), 1 vs 0 (1).
	if s.WithinPct != 1 {
		t.Errorf("WithinPct = %g", s.WithinPct)
	}
	if s.PearsonApprox < 0.99 {
		t.Errorf("Pearson = %g for a near-diagonal scatter", s.PearsonApprox)
	}
	if math.Abs(s.RegressionSlope-1) > 0.1 {
		t.Errorf("slope = %g", s.RegressionSlope)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty Summarize = %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scatter length mismatch must panic")
		}
	}()
	Scatter([]int64{1}, nil)
}

func TestSummarizeConstantExact(t *testing.T) {
	// Zero variance in one coordinate: Pearson stays 0 rather than NaN.
	s := Summarize([]ScatterPoint{{5, 4}, {5, 6}, {5, 5}})
	if math.IsNaN(s.PearsonApprox) || s.PearsonApprox != 0 {
		t.Errorf("Pearson = %g, want 0", s.PearsonApprox)
	}
}

func TestTiming(t *testing.T) {
	tm := Timing{Queries: 100, Total: 200 * time.Millisecond}
	if tm.PerQuery() != 2*time.Millisecond {
		t.Errorf("PerQuery = %v", tm.PerQuery())
	}
	if (Timing{}).PerQuery() != 0 {
		t.Errorf("zero Timing PerQuery must be 0")
	}
	if tm.String() == "" {
		t.Error("String empty")
	}
}

func TestMeasure(t *testing.T) {
	calls := 0
	tm := Measure(10, 0, func() { calls++ })
	if calls != 1 {
		t.Errorf("Measure with zero minDuration ran %d times, want 1", calls)
	}
	if tm.Queries != 10 || tm.Total < 0 {
		t.Errorf("Measure = %+v", tm)
	}
	calls = 0
	Measure(1, 2*time.Millisecond, func() { calls++; time.Sleep(time.Millisecond) })
	if calls < 2 {
		t.Errorf("Measure should repeat until minDuration: %d calls", calls)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Quantile(vals, 0) != 1 || Quantile(vals, 1) != 5 || Quantile(vals, 0.5) != 3 {
		t.Errorf("Quantile wrong: %g %g %g", Quantile(vals, 0), Quantile(vals, 1), Quantile(vals, 0.5))
	}
	// Input must not be reordered.
	if vals[0] != 5 {
		t.Error("Quantile mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Quantile must panic")
		}
	}()
	Quantile(nil, 0.5)
}
