package geom

// IntersectionMatrix is a 9-intersection matrix (Equation 1 of the paper):
// M[i][j] records whether part i of p intersects part j of q, where parts
// are ordered interior, boundary, exterior.
type IntersectionMatrix [3][3]bool

// Matrix part indices.
const (
	Interior = 0
	Boundary = 1
	Exterior = 2
)

// String renders the matrix as three rows of 0/1.
func (m IntersectionMatrix) String() string {
	out := make([]byte, 0, 12)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m[i][j] {
				out = append(out, '1')
			} else {
				out = append(out, '0')
			}
		}
		if i < 2 {
			out = append(out, '\n')
		}
	}
	return string(out)
}

// NineIntersection computes the 9-intersection matrix between two
// non-degenerate rectangles. The computation is exact: each of the nine
// point-set intersections is decided from the interval relations of the two
// x-projections and the two y-projections.
func NineIntersection(p, q Rect) IntersectionMatrix {
	if p.Degenerate() || q.Degenerate() {
		panic("geom: NineIntersection on degenerate rectangle")
	}
	var m IntersectionMatrix

	// Exteriors of two bounded regions always intersect.
	m[Exterior][Exterior] = true

	ii := p.InteriorsIntersect(q)
	m[Interior][Interior] = ii

	pInQclosed := q.Contains(p)
	qInPclosed := p.Contains(q)

	// p.i ∩ q.e: some interior point of p lies outside closed q.
	m[Interior][Exterior] = !pInQclosed
	// p.e ∩ q.i: symmetric.
	m[Exterior][Interior] = !qInPclosed

	// p.b ∩ q.e: some boundary point of p lies strictly outside closed q.
	// The boundary of p lies within closed q iff closed p ⊆ closed q.
	m[Boundary][Exterior] = !pInQclosed
	m[Exterior][Boundary] = !qInPclosed

	// p.i ∩ q.b: a boundary point of q lies in the open rectangle p.
	m[Interior][Boundary] = boundaryMeetsInterior(q, p)
	m[Boundary][Interior] = boundaryMeetsInterior(p, q)

	// p.b ∩ q.b: the two boundaries share a point.
	m[Boundary][Boundary] = boundariesIntersect(p, q)

	return m
}

// boundaryMeetsInterior reports whether the boundary of a intersects the
// open rectangle b.
func boundaryMeetsInterior(a, b Rect) bool {
	// A boundary point of a inside open b exists iff one of a's four edges
	// passes through the interior of b.
	// Vertical edges of a at x = a.XMin and x = a.XMax, spanning a's y-range.
	for _, x := range [2]float64{a.XMin, a.XMax} {
		if x > b.XMin && x < b.XMax &&
			a.YMin < b.YMax && b.YMin < a.YMax {
			return true
		}
	}
	for _, y := range [2]float64{a.YMin, a.YMax} {
		if y > b.YMin && y < b.YMax &&
			a.XMin < b.XMax && b.XMin < a.XMax {
			return true
		}
	}
	return false
}

// boundariesIntersect reports whether the boundaries of the two rectangles
// share at least one point.
func boundariesIntersect(a, b Rect) bool {
	if !a.Intersects(b) {
		return false
	}
	// If the closed rectangles intersect, the boundaries miss each other only
	// when one open rectangle strictly contains the other closed rectangle.
	if a.ContainsStrict(b) || b.ContainsStrict(a) {
		return false
	}
	return true
}

// Classify maps a 9-intersection matrix of two hole-free regions to one of
// the eight realizable Level 3 relations (Figure 3 of the paper). It panics
// on a matrix that no pair of hole-free regions can produce.
func (m IntersectionMatrix) Classify() Rel3 {
	ii := m[Interior][Interior]
	ie := m[Interior][Exterior]
	ei := m[Exterior][Interior]
	bb := m[Boundary][Boundary]

	switch {
	case !ii && !bb:
		return Rel3Disjoint
	case !ii && bb:
		return Rel3Meet
	case ii && ie && ei:
		return Rel3Overlap
	case ii && !ie && !ei:
		if bb {
			return Rel3Equal
		}
		panic("geom: unrealizable 9-intersection matrix (equal interiors, disjoint boundaries)")
	case ii && !ie && ei:
		// p.i∩q.e empty and q extends beyond p: p is inside q.
		if bb {
			return Rel3CoveredBy
		}
		return Rel3Inside
	case ii && ie && !ei:
		if bb {
			return Rel3Covers
		}
		return Rel3Contains
	}
	panic("geom: unrealizable 9-intersection matrix")
}
