// Polygon geometry for the rasterized-object pipeline. The raster-interval
// line of work (Georgiadis et al.) approximates real geometries as per-cell
// interval runs; before a polygon can be rasterized the grid layer needs
// three predicates of it: its MBR, point membership (even-odd), and whether
// its boundary crosses the open interior of a cell rectangle. All three
// live here, below grid in the import graph.
package geom

import "math"

// Polygon is a closed polygonal region given by its vertex ring; the edge
// from the last vertex back to the first is implicit. The region is defined
// by the even-odd fill rule, so self-intersecting rings are well-defined
// (if unusual) inputs rather than errors — the rasterizer and its fuzz
// target rely on that totality.
type Polygon []Point

// Valid reports whether the ring has at least three vertices with finite
// coordinates — the minimum for a region with a non-empty interior.
func (p Polygon) Valid() bool {
	if len(p) < 3 {
		return false
	}
	for _, v := range p {
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsInf(v.X, 0) || math.IsInf(v.Y, 0) {
			return false
		}
	}
	return true
}

// MBR returns the minimal bounding rectangle of the ring. It panics on an
// empty polygon, mirroring MBROf.
func (p Polygon) MBR() Rect {
	if len(p) == 0 {
		panic("geom: MBR of empty polygon")
	}
	out := Rect{XMin: p[0].X, YMin: p[0].Y, XMax: p[0].X, YMax: p[0].Y}
	for _, v := range p[1:] {
		out.XMin = math.Min(out.XMin, v.X)
		out.YMin = math.Min(out.YMin, v.Y)
		out.XMax = math.Max(out.XMax, v.X)
		out.YMax = math.Max(out.YMax, v.Y)
	}
	return out
}

// Area returns the unsigned area of the ring by the shoelace formula. For
// self-intersecting rings this is the absolute net signed area, not the
// even-odd region area.
func (p Polygon) Area() float64 {
	var s float64
	for i, a := range p {
		b := p[(i+1)%len(p)]
		s += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(s) / 2
}

// ContainsPoint reports whether pt lies inside the even-odd region of the
// ring. Points exactly on the boundary may land on either side — callers
// that care (the rasterizer) classify boundary-crossed cells separately
// before ever asking about containment.
func (p Polygon) ContainsPoint(pt Point) bool {
	inside := false
	for i, a := range p {
		b := p[(i+1)%len(p)]
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			x := a.X + (pt.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if pt.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// BoundaryIntersectsOpen reports whether any edge of the ring passes
// through the open interior of r. Edges that merely touch or run along r's
// boundary do not count: under the paper's shrinking convention a cell is
// only "cut" by an object boundary that enters it, so a polygon edge lying
// exactly on a grid line leaves both adjacent cells uncut. This is the
// partial-cell predicate of the rasterizer.
func (p Polygon) BoundaryIntersectsOpen(r Rect) bool {
	for i, a := range p {
		b := p[(i+1)%len(p)]
		if SegmentIntersectsOpen(a, b, r) {
			return true
		}
	}
	return false
}

// SegmentIntersectsOpen reports whether the closed segment ab shares a
// point with the open rectangle r. The test clips the segment to the closed
// rectangle (Liang–Barsky) and checks whether the midpoint of the clipped
// range is strictly inside: a clipped sub-segment with positive length
// inside the closed rect lies on the boundary if and only if its midpoint
// does, and a single-point contact is always boundary.
func SegmentIntersectsOpen(a, b Point, r Rect) bool {
	dx, dy := b.X-a.X, b.Y-a.Y
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, a.X-r.XMin) || !clip(dx, r.XMax-a.X) ||
		!clip(-dy, a.Y-r.YMin) || !clip(dy, r.YMax-a.Y) {
		return false
	}
	tm := (t0 + t1) / 2
	x, y := a.X+tm*dx, a.Y+tm*dy
	return x > r.XMin && x < r.XMax && y > r.YMin && y < r.YMax
}
