package geom

import (
	"math"
	"testing"
)

func TestPolygonValid(t *testing.T) {
	if (Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}}).Valid() {
		t.Error("2-vertex polygon reported valid")
	}
	if (Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: math.NaN(), Y: 1}}).Valid() {
		t.Error("NaN vertex reported valid")
	}
	if !(Polygon{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}).Valid() {
		t.Error("triangle reported invalid")
	}
}

func TestPolygonMBRAndArea(t *testing.T) {
	sq := Polygon{{X: 1, Y: 2}, {X: 5, Y: 2}, {X: 5, Y: 6}, {X: 1, Y: 6}}
	if got, want := sq.MBR(), NewRect(1, 2, 5, 6); got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	if got := sq.Area(); got != 16 {
		t.Errorf("Area = %g, want 16", got)
	}
	// Reversed winding: same unsigned area.
	rev := Polygon{{X: 1, Y: 6}, {X: 5, Y: 6}, {X: 5, Y: 2}, {X: 1, Y: 2}}
	if got := rev.Area(); got != 16 {
		t.Errorf("reversed Area = %g, want 16", got)
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	tri := Polygon{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{X: 1, Y: 1}, true},
		{Point{X: 3, Y: 3}, false},
		{Point{X: -1, Y: 1}, false},
		{Point{X: 0.5, Y: 0.5}, true},
	}
	for _, c := range cases {
		if got := tri.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Even-odd: the bowtie's crossing region is outside.
	bow := Polygon{{X: 0, Y: 0}, {X: 4, Y: 4}, {X: 4, Y: 0}, {X: 0, Y: 4}}
	if !bow.ContainsPoint(Point{X: 1, Y: 2}) {
		t.Error("bowtie left lobe not contained")
	}
	if !bow.ContainsPoint(Point{X: 3, Y: 2}) {
		t.Error("bowtie right lobe not contained")
	}
}

func TestSegmentIntersectsOpen(t *testing.T) {
	r := NewRect(1, 1, 3, 3)
	cases := []struct {
		a, b Point
		want bool
		name string
	}{
		{Point{X: 0, Y: 2}, Point{X: 4, Y: 2}, true, "crossing"},
		{Point{X: 1.5, Y: 1.5}, Point{X: 2.5, Y: 2.5}, true, "inside"},
		{Point{X: 0, Y: 0}, Point{X: 0.5, Y: 4}, false, "outside"},
		{Point{X: 1, Y: 0}, Point{X: 1, Y: 4}, false, "along left boundary"},
		{Point{X: 0, Y: 1}, Point{X: 4, Y: 1}, false, "along bottom boundary"},
		{Point{X: 0, Y: 0}, Point{X: 1, Y: 1}, false, "touching corner"},
		{Point{X: 0, Y: 4}, Point{X: 4, Y: 0}, true, "diagonal through interior"},
		{Point{X: 0, Y: 2}, Point{X: 1, Y: 2}, false, "ending on boundary"},
		{Point{X: 0, Y: 2}, Point{X: 1.1, Y: 2}, true, "ending inside"},
	}
	for _, c := range cases {
		if got := SegmentIntersectsOpen(c.a, c.b, r); got != c.want {
			t.Errorf("%s: SegmentIntersectsOpen(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		// Symmetry in segment direction.
		if got := SegmentIntersectsOpen(c.b, c.a, r); got != c.want {
			t.Errorf("%s reversed: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBoundaryIntersectsOpen(t *testing.T) {
	// A cell-aligned square: boundary runs along the grid lines of
	// neighboring unit cells, so no open unit cell is cut.
	sq := Polygon{{X: 1, Y: 1}, {X: 3, Y: 1}, {X: 3, Y: 3}, {X: 1, Y: 3}}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			cell := NewRect(float64(i), float64(j), float64(i+1), float64(j+1))
			if sq.BoundaryIntersectsOpen(cell) {
				t.Errorf("aligned square cuts open cell (%d,%d)", i, j)
			}
		}
	}
	tri := Polygon{{X: 0.5, Y: 0.5}, {X: 2.5, Y: 0.5}, {X: 0.5, Y: 2.5}}
	if !tri.BoundaryIntersectsOpen(NewRect(0, 0, 1, 1)) {
		t.Error("triangle does not cut cell (0,0)")
	}
	if tri.BoundaryIntersectsOpen(NewRect(2, 2, 3, 3)) {
		t.Error("triangle cuts far cell (2,2)")
	}
}
