// Package geom provides the rectangle geometry underlying the spatial
// histograms: minimal bounding rectangles (MBRs), point/rectangle
// predicates, and the spatial relation models used by the paper — Level 1
// (disjoint/intersect), Level 2 (the interior–exterior intersection model)
// and Level 3 (the Egenhofer–Herring 9-intersection model).
//
// Throughout this package "interior" means the topological interior of a
// rectangle (the open rectangle) and "boundary" its four edges. A rectangle
// with zero width or height is degenerate: its interior is empty, so it can
// only be disjoint from or overlap other regions under the Level 2 model;
// higher layers snap such objects to grid cells before histogram insertion.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-d data space.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle [XMin,XMax]×[YMin,YMax]. It is the MBR
// representation used for every spatial object in the library. The zero
// value is the degenerate rectangle at the origin.
type Rect struct {
	XMin, YMin, XMax, YMax float64
}

// NewRect returns the rectangle with the given bounds, normalizing the
// coordinate order so that XMin <= XMax and YMin <= YMax.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{XMin: x1, YMin: y1, XMax: x2, YMax: y2}
}

// RectFromCenter returns the rectangle of the given width and height
// centered at c.
func RectFromCenter(c Point, width, height float64) Rect {
	return Rect{
		XMin: c.X - width/2, YMin: c.Y - height/2,
		XMax: c.X + width/2, YMax: c.Y + height/2,
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.XMin, r.XMax, r.YMin, r.YMax)
}

// Valid reports whether the rectangle's bounds are ordered and finite.
func (r Rect) Valid() bool {
	return r.XMin <= r.XMax && r.YMin <= r.YMax &&
		!math.IsNaN(r.XMin) && !math.IsNaN(r.YMin) &&
		!math.IsInf(r.XMin, 0) && !math.IsInf(r.YMin, 0) &&
		!math.IsInf(r.XMax, 0) && !math.IsInf(r.YMax, 0)
}

// Width returns XMax - XMin.
func (r Rect) Width() float64 { return r.XMax - r.XMin }

// Height returns YMax - YMin.
func (r Rect) Height() float64 { return r.YMax - r.YMin }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	return Point{X: (r.XMin + r.XMax) / 2, Y: (r.YMin + r.YMax) / 2}
}

// Degenerate reports whether the rectangle has an empty interior, i.e. zero
// width or zero height (points and axis-parallel line segments).
func (r Rect) Degenerate() bool {
	return r.XMin >= r.XMax || r.YMin >= r.YMax
}

// ContainsPoint reports whether p lies in the closed rectangle.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.XMin && p.X <= r.XMax && p.Y >= r.YMin && p.Y <= r.YMax
}

// Intersects reports whether the closed rectangles share at least one point
// (boundary contact counts).
func (r Rect) Intersects(s Rect) bool {
	return r.XMin <= s.XMax && s.XMin <= r.XMax &&
		r.YMin <= s.YMax && s.YMin <= r.YMax
}

// InteriorsIntersect reports whether the open rectangles share at least one
// point. This is the Level 1 "intersect" relation of the paper: boundary
// contact alone does not count.
func (r Rect) InteriorsIntersect(s Rect) bool {
	return r.XMin < s.XMax && s.XMin < r.XMax &&
		r.YMin < s.YMax && s.YMin < r.YMax
}

// Contains reports whether s lies entirely within the closed rectangle r
// (boundary contact allowed).
func (r Rect) Contains(s Rect) bool {
	return s.XMin >= r.XMin && s.XMax <= r.XMax &&
		s.YMin >= r.YMin && s.YMax <= r.YMax
}

// ContainsStrict reports whether the closed rectangle s lies entirely within
// the interior of r, i.e. no boundary contact.
func (r Rect) ContainsStrict(s Rect) bool {
	return s.XMin > r.XMin && s.XMax < r.XMax &&
		s.YMin > r.YMin && s.YMax < r.YMax
}

// Union returns the MBR of the two rectangles.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		XMin: math.Min(r.XMin, s.XMin),
		YMin: math.Min(r.YMin, s.YMin),
		XMax: math.Max(r.XMax, s.XMax),
		YMax: math.Max(r.YMax, s.YMax),
	}
}

// Intersection returns the overlap of the two closed rectangles and whether
// it is non-empty. When the rectangles are disjoint the zero Rect is
// returned with ok == false.
func (r Rect) Intersection(s Rect) (overlap Rect, ok bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		XMin: math.Max(r.XMin, s.XMin),
		YMin: math.Max(r.YMin, s.YMin),
		XMax: math.Min(r.XMax, s.XMax),
		YMax: math.Min(r.YMax, s.YMax),
	}, true
}

// Expand returns the rectangle grown by d on every side. Negative d shrinks
// the rectangle; the result is normalized so it stays valid (a rectangle
// shrunk past its center collapses to its center point).
func (r Rect) Expand(d float64) Rect {
	out := Rect{XMin: r.XMin - d, YMin: r.YMin - d, XMax: r.XMax + d, YMax: r.YMax + d}
	if out.XMin > out.XMax {
		c := (r.XMin + r.XMax) / 2
		out.XMin, out.XMax = c, c
	}
	if out.YMin > out.YMax {
		c := (r.YMin + r.YMax) / 2
		out.YMin, out.YMax = c, c
	}
	return out
}

// Translate returns the rectangle shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{XMin: r.XMin + dx, YMin: r.YMin + dy, XMax: r.XMax + dx, YMax: r.YMax + dy}
}

// Clip returns the part of r inside bounds. If r lies entirely outside, the
// returned rectangle is degenerate (collapsed onto the nearest edge of
// bounds) and ok is false.
func (r Rect) Clip(bounds Rect) (clipped Rect, ok bool) {
	if c, hit := r.Intersection(bounds); hit {
		return c, true
	}
	return Rect{
		XMin: clampF(r.XMin, bounds.XMin, bounds.XMax),
		YMin: clampF(r.YMin, bounds.YMin, bounds.YMax),
		XMax: clampF(r.XMax, bounds.XMin, bounds.XMax),
		YMax: clampF(r.YMax, bounds.YMin, bounds.YMax),
	}, false
}

// EnlargementNeeded returns how much r's area must grow to cover s. It is
// the classic R-tree insertion cost metric.
func (r Rect) EnlargementNeeded(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Margin returns half the perimeter (width + height), the R*-tree split
// goodness metric.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// MBROf returns the minimal bounding rectangle of a non-empty set of
// rectangles. It panics on an empty slice: an MBR of nothing is undefined.
func MBROf(rects []Rect) Rect {
	if len(rects) == 0 {
		panic("geom: MBROf of empty slice")
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
