package geom

import "testing"

func TestRel2CountsAddGetTotal(t *testing.T) {
	var c Rel2Counts
	seq := []Rel2{
		Rel2Disjoint, Rel2Disjoint,
		Rel2Contains,
		Rel2Contained, Rel2Contained, Rel2Contained,
		Rel2Equals,
		Rel2Overlap, Rel2Overlap,
	}
	for _, r := range seq {
		c.Add(r)
	}
	want := Rel2Counts{Disjoint: 2, Contains: 1, Contained: 3, Equals: 1, Overlap: 2}
	if c != want {
		t.Fatalf("counts = %+v, want %+v", c, want)
	}
	if c.Total() != int64(len(seq)) {
		t.Fatalf("Total = %d, want %d", c.Total(), len(seq))
	}
	if c.Intersecting() != 7 {
		t.Fatalf("Intersecting = %d, want 7", c.Intersecting())
	}
	for _, r := range []Rel2{Rel2Disjoint, Rel2Contains, Rel2Contained, Rel2Equals, Rel2Overlap} {
		var single Rel2Counts
		single.Add(r)
		if single.Get(r) != 1 || single.Total() != 1 {
			t.Errorf("Get(%v) after Add = %d", r, single.Get(r))
		}
	}
	if c.Get(Rel2(99)) != 0 {
		t.Error("Get of invalid relation must be 0")
	}
	c.Add(Rel2(99)) // must be a no-op, not a panic
	if c.Total() != int64(len(seq)) {
		t.Error("Add of invalid relation changed the tally")
	}
}

func TestLevel2Browse(t *testing.T) {
	q := NewRect(0, 0, 10, 10)
	cases := []struct {
		name string
		obj  Rect
		want Rel2
	}{
		{"regular object delegates to Level2", NewRect(2, 2, 20, 20), Rel2Overlap},
		{"point inside", NewRect(5, 5, 5, 5), Rel2Contains},
		{"point on boundary", NewRect(10, 5, 10, 5), Rel2Overlap},
		{"point outside", NewRect(11, 5, 11, 5), Rel2Disjoint},
		{"segment inside", NewRect(2, 5, 8, 5), Rel2Contains},
		{"segment crossing boundary", NewRect(5, 5, 15, 5), Rel2Overlap},
		{"segment along boundary", NewRect(0, 0, 0, 10), Rel2Overlap},
		{"segment outside", NewRect(20, 0, 20, 10), Rel2Disjoint},
	}
	for _, c := range cases {
		if got := Level2Browse(q, c.obj); got != c.want {
			t.Errorf("%s: Level2Browse = %v, want %v", c.name, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate query must panic")
		}
	}()
	Level2Browse(NewRect(1, 1, 1, 5), NewRect(0, 0, 2, 2))
}

func TestRectString(t *testing.T) {
	if got := NewRect(1, 2, 3, 4).String(); got != "[1,3]x[2,4]" {
		t.Fatalf("String = %q", got)
	}
}

func TestRel3ToRel2AllCases(t *testing.T) {
	cases := map[Rel3]Rel2{
		Rel3Disjoint:  Rel2Disjoint,
		Rel3Meet:      Rel2Disjoint,
		Rel3Overlap:   Rel2Overlap,
		Rel3Covers:    Rel2Contains,
		Rel3Contains:  Rel2Contains,
		Rel3CoveredBy: Rel2Contained,
		Rel3Inside:    Rel2Contained,
		Rel3Equal:     Rel2Equals,
	}
	for r3, want := range cases {
		if got := Rel3ToRel2(r3); got != want {
			t.Errorf("Rel3ToRel2(%v) = %v, want %v", r3, got, want)
		}
	}
}

func TestClipClampsAllSides(t *testing.T) {
	bounds := NewRect(0, 0, 10, 10)
	// Entirely above-right: both mins and maxes need clamping down.
	c, ok := NewRect(20, 20, 30, 30).Clip(bounds)
	if ok || c != NewRect(10, 10, 10, 10) {
		t.Fatalf("Clip = %v/%t", c, ok)
	}
	// Entirely below-left.
	c, ok = NewRect(-30, -30, -20, -20).Clip(bounds)
	if ok || c != NewRect(0, 0, 0, 0) {
		t.Fatalf("Clip = %v/%t", c, ok)
	}
}
