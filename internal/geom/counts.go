package geom

// Rel2Counts tallies how many objects fall into each Level 2 relation with
// respect to one query: the quantities N_d, N_cs, N_cd, N_eq and N_o of
// §4.2. Under the paper's shrinking convention Equals is always zero for
// grid-aligned queries, but the field is kept so that exact evaluators over
// raw (un-snapped) geometry can report it.
type Rel2Counts struct {
	Disjoint  int64 // N_d
	Contains  int64 // N_cs: objects contained in the query
	Contained int64 // N_cd: objects containing the query
	Equals    int64 // N_eq
	Overlap   int64 // N_o
}

// Add increments the tally for one classified object.
func (c *Rel2Counts) Add(r Rel2) {
	switch r {
	case Rel2Disjoint:
		c.Disjoint++
	case Rel2Contains:
		c.Contains++
	case Rel2Contained:
		c.Contained++
	case Rel2Equals:
		c.Equals++
	case Rel2Overlap:
		c.Overlap++
	}
}

// Total returns the number of objects tallied, |S|.
func (c Rel2Counts) Total() int64 {
	return c.Disjoint + c.Contains + c.Contained + c.Equals + c.Overlap
}

// Intersecting returns n_ii, the number of objects whose interiors
// intersect the query: everything but the disjoint ones.
func (c Rel2Counts) Intersecting() int64 { return c.Total() - c.Disjoint }

// Get returns the tally for one relation.
func (c Rel2Counts) Get(r Rel2) int64 {
	switch r {
	case Rel2Disjoint:
		return c.Disjoint
	case Rel2Contains:
		return c.Contains
	case Rel2Contained:
		return c.Contained
	case Rel2Equals:
		return c.Equals
	case Rel2Overlap:
		return c.Overlap
	}
	return 0
}
