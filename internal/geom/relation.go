package geom

// The paper's three spatial relation "levels" (Figure 3):
//
//   - Level 1 distinguishes disjoint vs intersect using only the
//     intersection of the two interiors. This is the only relation prior
//     range-selectivity work supports.
//   - Level 2 is the interior–exterior intersection model contributed by the
//     paper: a 2×2 matrix of interior/exterior intersections distinguishing
//     disjoint, contains, contained, equals, overlap.
//   - Level 3 is the full 9-intersection model of Egenhofer & Herring with
//     eight relations for hole-free regions.
//
// Relation names follow the paper's query-centric convention: for a query p
// and object q, Contains means *the query contains the object* (counted in
// N_cs) and Contained means *the query is contained in the object* (N_cd).

// Rel1 is a Level 1 spatial relation.
type Rel1 uint8

// Level 1 relations.
const (
	Rel1Disjoint Rel1 = iota
	Rel1Intersect
)

// String implements fmt.Stringer.
func (r Rel1) String() string {
	switch r {
	case Rel1Disjoint:
		return "disjoint"
	case Rel1Intersect:
		return "intersect"
	}
	return "rel1(invalid)"
}

// Rel2 is a Level 2 spatial relation under the interior–exterior
// intersection model.
type Rel2 uint8

// Level 2 relations, query-centric: Rel2Contains means the query contains
// the object; Rel2Contained means the object contains the query.
const (
	Rel2Disjoint Rel2 = iota
	Rel2Contains
	Rel2Contained
	Rel2Equals
	Rel2Overlap
)

// String implements fmt.Stringer.
func (r Rel2) String() string {
	switch r {
	case Rel2Disjoint:
		return "disjoint"
	case Rel2Contains:
		return "contains"
	case Rel2Contained:
		return "contained"
	case Rel2Equals:
		return "equals"
	case Rel2Overlap:
		return "overlap"
	}
	return "rel2(invalid)"
}

// Rel3 is a Level 3 spatial relation under the 9-intersection model,
// restricted to the eight relations realizable between hole-free regions.
type Rel3 uint8

// Level 3 relations, query-centric: for query p and object q, Rel3Contains
// means p contains q with no boundary contact, Rel3Covers means p contains q
// with boundary contact, Rel3Inside / Rel3CoveredBy are the converses.
const (
	Rel3Disjoint Rel3 = iota
	Rel3Meet
	Rel3Overlap
	Rel3Covers
	Rel3Contains
	Rel3CoveredBy
	Rel3Inside
	Rel3Equal
)

// String implements fmt.Stringer.
func (r Rel3) String() string {
	switch r {
	case Rel3Disjoint:
		return "disjoint"
	case Rel3Meet:
		return "meet"
	case Rel3Overlap:
		return "overlap"
	case Rel3Covers:
		return "covers"
	case Rel3Contains:
		return "contains"
	case Rel3CoveredBy:
		return "coveredBy"
	case Rel3Inside:
		return "inside"
	case Rel3Equal:
		return "equal"
	}
	return "rel3(invalid)"
}

// Level1 classifies the Level 1 relation between query p and object q: they
// intersect iff their interiors intersect.
func Level1(p, q Rect) Rel1 {
	if p.InteriorsIntersect(q) {
		return Rel1Intersect
	}
	return Rel1Disjoint
}

// Level2 classifies the Level 2 relation between query p and object q under
// the interior–exterior intersection model (Equation 2 of the paper).
//
// The four matrix entries for rectangles reduce to:
//
//	p.i ∩ q.i ≠ ∅  — interiors overlap
//	p.i ∩ q.e ≠ ∅  — p is not contained in q (some of p sticks out)
//	p.e ∩ q.i ≠ ∅  — q is not contained in p
//	p.e ∩ q.e ≠ ∅  — always true for bounded regions
//
// Degenerate rectangles have empty interiors and classify as disjoint from
// everything; callers working at a grid resolution should snap such objects
// to cells first (grid.Snap) so they acquire an interior.
func Level2(p, q Rect) Rel2 {
	if p.Degenerate() || q.Degenerate() {
		return Rel2Disjoint
	}
	ii := p.InteriorsIntersect(q)
	if !ii {
		return Rel2Disjoint
	}
	// p.i ∩ q.e is empty iff closed p ⊆ closed q; for rectangles the
	// interior of p escapes q exactly when p is not contained in q.
	pInQ := q.Contains(p)
	qInP := p.Contains(q)
	switch {
	case pInQ && qInP:
		return Rel2Equals
	case qInP:
		return Rel2Contains
	case pInQ:
		return Rel2Contained
	default:
		return Rel2Overlap
	}
}

// Level3 classifies the Level 3 relation between query p and object q under
// the 9-intersection model, using the eight hole-free region relations.
// Degenerate rectangles are not regions; Level3 panics on them to avoid
// silently misclassifying (use Level1/Level2 or snap to a grid first).
func Level3(p, q Rect) Rel3 {
	if p.Degenerate() || q.Degenerate() {
		panic("geom: Level3 on degenerate rectangle")
	}
	m := NineIntersection(p, q)
	return m.Classify()
}

// Level2Browse classifies the Level 2 relation between a non-degenerate
// query p and object q for browsing purposes: unlike Level2, a degenerate
// object (point or axis-parallel segment) is treated as an infinitesimally
// extended region — the same convention grid.Snap uses — so that every
// dataset record participates in the counts:
//
//   - strictly inside p:            contains
//   - touching p (boundary or not): overlap
//   - outside closed p:             disjoint
//
// Non-degenerate objects classify exactly as Level2. Level2Browse panics on
// a degenerate query: browsing tiles always have positive extent.
func Level2Browse(p, q Rect) Rel2 {
	if p.Degenerate() {
		panic("geom: Level2Browse with degenerate query")
	}
	if !q.Degenerate() {
		return Level2(p, q)
	}
	switch {
	case !p.Intersects(q):
		return Rel2Disjoint
	case p.ContainsStrict(q):
		return Rel2Contains
	default:
		return Rel2Overlap
	}
}

// Rel2ToRel1 projects a Level 2 relation down to Level 1.
func Rel2ToRel1(r Rel2) Rel1 {
	if r == Rel2Disjoint {
		return Rel1Disjoint
	}
	return Rel1Intersect
}

// Rel3ToRel2 projects a Level 3 relation down to Level 2 by discarding
// boundary information: meet becomes disjoint (interiors do not intersect),
// covers becomes contains, coveredBy becomes contained.
func Rel3ToRel2(r Rel3) Rel2 {
	switch r {
	case Rel3Disjoint, Rel3Meet:
		return Rel2Disjoint
	case Rel3Contains, Rel3Covers:
		return Rel2Contains
	case Rel3Inside, Rel3CoveredBy:
		return Rel2Contained
	case Rel3Equal:
		return Rel2Equals
	default:
		return Rel2Overlap
	}
}
