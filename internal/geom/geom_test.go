package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(3, 4, 1, 2)
	want := Rect{XMin: 1, YMin: 2, XMax: 3, YMax: 4}
	if r != want {
		t.Fatalf("NewRect(3,4,1,2) = %v, want %v", r, want)
	}
}

func TestRectFromCenter(t *testing.T) {
	r := RectFromCenter(Point{X: 10, Y: 20}, 4, 6)
	want := Rect{XMin: 8, YMin: 17, XMax: 12, YMax: 23}
	if r != want {
		t.Fatalf("RectFromCenter = %v, want %v", r, want)
	}
	if got := r.Center(); got != (Point{X: 10, Y: 20}) {
		t.Fatalf("Center = %v, want (10,20)", got)
	}
}

func TestRectBasicProps(t *testing.T) {
	r := NewRect(1, 2, 4, 6)
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %g, want 3", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height = %g, want 4", got)
	}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %g, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %g, want 7", got)
	}
	if r.Degenerate() {
		t.Errorf("Degenerate = true for non-degenerate rect")
	}
	if !NewRect(1, 1, 1, 5).Degenerate() {
		t.Errorf("zero-width rect should be degenerate")
	}
	if !NewRect(1, 1, 1, 1).Degenerate() {
		t.Errorf("point rect should be degenerate")
	}
}

func TestValid(t *testing.T) {
	if !NewRect(0, 0, 1, 1).Valid() {
		t.Errorf("unit rect should be valid")
	}
	if (Rect{XMin: 2, XMax: 1}).Valid() {
		t.Errorf("reversed rect should be invalid")
	}
	if (Rect{XMin: math.NaN()}).Valid() {
		t.Errorf("NaN rect should be invalid")
	}
	if (Rect{XMax: math.Inf(1), YMax: 1}).Valid() {
		t.Errorf("Inf rect should be invalid")
	}
}

func TestContainsPoint(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true},  // corner is in the closed rect
		{Point{2, 2}, true},  // corner
		{Point{2, 1}, true},  // edge
		{Point{3, 1}, false}, // outside
		{Point{1, -0.001}, false},
	}
	for _, c := range cases {
		if got := r.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %t, want %t", c.p, got, c.want)
		}
	}
}

func TestIntersectsVsInteriors(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(2, 0, 4, 2) // shares the edge x=2
	if !a.Intersects(b) {
		t.Errorf("closed rects sharing an edge must intersect")
	}
	if a.InteriorsIntersect(b) {
		t.Errorf("open rects sharing only an edge must not intersect")
	}
	c := NewRect(1.5, 0.5, 3, 1)
	if !a.InteriorsIntersect(c) {
		t.Errorf("overlapping rects' interiors must intersect")
	}
	d := NewRect(10, 10, 11, 11)
	if a.Intersects(d) || a.InteriorsIntersect(d) {
		t.Errorf("far rects must be disjoint")
	}
	// Corner touch.
	e := NewRect(2, 2, 3, 3)
	if !a.Intersects(e) || a.InteriorsIntersect(e) {
		t.Errorf("corner touch: closed intersect, open disjoint")
	}
}

func TestContainment(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	inner := NewRect(2, 2, 4, 4)
	edge := NewRect(0, 2, 4, 4) // touches the boundary of outer
	if !outer.Contains(inner) || !outer.ContainsStrict(inner) {
		t.Errorf("inner must be (strictly) contained")
	}
	if !outer.Contains(edge) {
		t.Errorf("edge-touching rect is contained (closed)")
	}
	if outer.ContainsStrict(edge) {
		t.Errorf("edge-touching rect is not strictly contained")
	}
	if inner.Contains(outer) {
		t.Errorf("inner cannot contain outer")
	}
	if !outer.Contains(outer) {
		t.Errorf("a rect contains itself (closed)")
	}
	if outer.ContainsStrict(outer) {
		t.Errorf("a rect does not strictly contain itself")
	}
}

func TestUnionIntersection(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(1, 1, 3, 4)
	if got, want := a.Union(b), NewRect(0, 0, 3, 4); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	got, ok := a.Intersection(b)
	if !ok || got != NewRect(1, 1, 2, 2) {
		t.Errorf("Intersection = %v/%t, want [1,2]x[1,2]/true", got, ok)
	}
	if _, ok := a.Intersection(NewRect(5, 5, 6, 6)); ok {
		t.Errorf("disjoint Intersection reported ok")
	}
	// Edge-touching rectangles intersect in a degenerate rect.
	ov, ok := a.Intersection(NewRect(2, 0, 3, 2))
	if !ok || !ov.Degenerate() {
		t.Errorf("edge touch intersection = %v/%t, want degenerate/true", ov, ok)
	}
}

func TestExpand(t *testing.T) {
	r := NewRect(2, 2, 4, 4)
	if got, want := r.Expand(1), NewRect(1, 1, 5, 5); got != want {
		t.Errorf("Expand(1) = %v, want %v", got, want)
	}
	if got, want := r.Expand(-0.5), NewRect(2.5, 2.5, 3.5, 3.5); got != want {
		t.Errorf("Expand(-0.5) = %v, want %v", got, want)
	}
	// Over-shrinking collapses to the center, stays valid.
	c := r.Expand(-10)
	if !c.Valid() || c.Center() != r.Center() {
		t.Errorf("over-shrunk rect = %v, want valid rect at center %v", c, r.Center())
	}
}

func TestTranslate(t *testing.T) {
	r := NewRect(0, 0, 1, 2)
	if got, want := r.Translate(5, -1), NewRect(5, -1, 6, 1); got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
}

func TestClip(t *testing.T) {
	bounds := NewRect(0, 0, 10, 10)
	in, ok := NewRect(-5, 3, 5, 20).Clip(bounds)
	if !ok || in != NewRect(0, 3, 5, 10) {
		t.Errorf("Clip = %v/%t, want [0,5]x[3,10]/true", in, ok)
	}
	out, ok := NewRect(20, 20, 30, 30).Clip(bounds)
	if ok {
		t.Errorf("Clip of outside rect reported ok")
	}
	if !out.Valid() || !bounds.Contains(out) {
		t.Errorf("clipped outside rect %v must collapse inside bounds", out)
	}
}

func TestEnlargementNeeded(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	if got := a.EnlargementNeeded(NewRect(1, 1, 2, 2)); got != 0 {
		t.Errorf("enlargement for contained rect = %g, want 0", got)
	}
	if got := a.EnlargementNeeded(NewRect(0, 0, 4, 2)); got != 4 {
		t.Errorf("enlargement = %g, want 4", got)
	}
}

func TestMBROf(t *testing.T) {
	rects := []Rect{NewRect(0, 0, 1, 1), NewRect(5, -2, 6, 0), NewRect(2, 3, 3, 9)}
	if got, want := MBROf(rects), NewRect(0, -2, 6, 9); got != want {
		t.Errorf("MBROf = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MBROf(nil) must panic")
		}
	}()
	MBROf(nil)
}

// randRect produces rectangles on a small integer lattice so that boundary
// cases (touching edges, equality, containment) occur frequently.
func randRect(r *rand.Rand) Rect {
	x1 := float64(r.Intn(8))
	y1 := float64(r.Intn(8))
	return NewRect(x1, y1, x1+float64(1+r.Intn(4)), y1+float64(1+r.Intn(4)))
}

func TestQuickUnionContainsBoth(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randRect(r), randRect(r)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntersectionSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRect(r), randRect(r)
		i1, ok1 := a.Intersection(b)
		i2, ok2 := b.Intersection(a)
		if ok1 != ok2 || i1 != i2 {
			return false
		}
		if ok1 && (!a.Contains(i1) || !b.Contains(i1)) {
			return false
		}
		return a.Intersects(b) == ok1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInteriorsIntersectImpliesIntersects(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randRect(r), randRect(r)
		if a.InteriorsIntersect(b) && !a.Intersects(b) {
			return false
		}
		return a.InteriorsIntersect(b) == b.InteriorsIntersect(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
