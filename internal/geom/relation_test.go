package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevel1(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	cases := []struct {
		q    Rect
		want Rel1
	}{
		{NewRect(1, 1, 3, 3), Rel1Intersect},
		{NewRect(2, 0, 3, 2), Rel1Disjoint}, // edge touch: interiors disjoint
		{NewRect(5, 5, 6, 6), Rel1Disjoint},
		{NewRect(0.5, 0.5, 1, 1), Rel1Intersect},
	}
	for _, c := range cases {
		if got := Level1(a, c.q); got != c.want {
			t.Errorf("Level1(%v, %v) = %v, want %v", a, c.q, got, c.want)
		}
	}
}

func TestLevel2(t *testing.T) {
	q := NewRect(10, 10, 20, 20) // the query
	cases := []struct {
		name string
		obj  Rect
		want Rel2
	}{
		{"far disjoint", NewRect(0, 0, 5, 5), Rel2Disjoint},
		{"edge meet is disjoint at level 2", NewRect(0, 10, 10, 20), Rel2Disjoint},
		{"corner meet is disjoint", NewRect(5, 5, 10, 10), Rel2Disjoint},
		{"object inside query", NewRect(12, 12, 15, 15), Rel2Contains},
		{"object covers-inside query (boundary contact)", NewRect(10, 12, 15, 15), Rel2Contains},
		{"object equals query", NewRect(10, 10, 20, 20), Rel2Equals},
		{"object contains query", NewRect(5, 5, 30, 30), Rel2Contained},
		{"object covers query with boundary contact", NewRect(10, 5, 30, 30), Rel2Contained},
		{"partial overlap", NewRect(15, 15, 30, 30), Rel2Overlap},
		{"crossover object", NewRect(5, 12, 30, 18), Rel2Overlap},
	}
	for _, c := range cases {
		if got := Level2(q, c.obj); got != c.want {
			t.Errorf("%s: Level2 = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLevel2Degenerate(t *testing.T) {
	q := NewRect(0, 0, 10, 10)
	pt := NewRect(5, 5, 5, 5)
	if got := Level2(q, pt); got != Rel2Disjoint {
		t.Errorf("Level2 with degenerate object = %v, want disjoint", got)
	}
	if got := Level2(pt, q); got != Rel2Disjoint {
		t.Errorf("Level2 with degenerate query = %v, want disjoint", got)
	}
}

func TestLevel3(t *testing.T) {
	q := NewRect(10, 10, 20, 20)
	cases := []struct {
		name string
		obj  Rect
		want Rel3
	}{
		{"disjoint", NewRect(0, 0, 5, 5), Rel3Disjoint},
		{"meet on edge", NewRect(0, 10, 10, 20), Rel3Meet},
		{"meet at corner", NewRect(5, 5, 10, 10), Rel3Meet},
		{"overlap", NewRect(15, 15, 30, 30), Rel3Overlap},
		{"contains (object strictly inside)", NewRect(12, 12, 15, 15), Rel3Contains},
		{"covers (object inside touching)", NewRect(10, 12, 15, 15), Rel3Covers},
		{"inside (query strictly inside object)", NewRect(5, 5, 30, 30), Rel3Inside},
		{"coveredBy (query inside object touching)", NewRect(10, 5, 30, 30), Rel3CoveredBy},
		{"equal", NewRect(10, 10, 20, 20), Rel3Equal},
	}
	for _, c := range cases {
		if got := Level3(q, c.obj); got != c.want {
			t.Errorf("%s: Level3 = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLevel3PanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Level3 on degenerate rect must panic")
		}
	}()
	Level3(NewRect(0, 0, 1, 1), NewRect(2, 2, 2, 3))
}

func TestNineIntersectionContainsMatrix(t *testing.T) {
	// Figure 2 of the paper: p contains q.
	p := NewRect(0, 0, 10, 10)
	q := NewRect(2, 2, 5, 5)
	m := NineIntersection(p, q)
	want := IntersectionMatrix{
		{true, true, true},
		{false, false, true},
		{false, false, true},
	}
	if m != want {
		t.Fatalf("NineIntersection contains matrix =\n%v\nwant\n%v", m, want)
	}
}

func TestNineIntersectionDisjointMatrix(t *testing.T) {
	m := NineIntersection(NewRect(0, 0, 1, 1), NewRect(5, 5, 6, 6))
	want := IntersectionMatrix{
		{false, false, true},
		{false, false, true},
		{true, true, true},
	}
	if m != want {
		t.Fatalf("disjoint matrix =\n%v\nwant\n%v", m, want)
	}
}

func TestIntersectionMatrixString(t *testing.T) {
	m := NineIntersection(NewRect(0, 0, 1, 1), NewRect(5, 5, 6, 6))
	if got, want := m.String(), "001\n001\n111"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestProjectionConsistency(t *testing.T) {
	// Level3 projected down must agree with direct Level2 and Level1
	// classification for every pair of lattice rectangles.
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		p, q := randRect(r), randRect(r)
		l3 := Level3(p, q)
		l2 := Level2(p, q)
		l1 := Level1(p, q)
		return Rel3ToRel2(l3) == l2 && Rel2ToRel1(l2) == l1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLevel2Converse(t *testing.T) {
	// Swapping arguments must swap contains/contained and keep the rest.
	r := rand.New(rand.NewSource(8))
	conv := map[Rel2]Rel2{
		Rel2Disjoint:  Rel2Disjoint,
		Rel2Contains:  Rel2Contained,
		Rel2Contained: Rel2Contains,
		Rel2Equals:    Rel2Equals,
		Rel2Overlap:   Rel2Overlap,
	}
	f := func() bool {
		p, q := randRect(r), randRect(r)
		return Level2(q, p) == conv[Level2(p, q)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRelStrings(t *testing.T) {
	if Rel1Intersect.String() != "intersect" || Rel1(9).String() != "rel1(invalid)" {
		t.Error("Rel1 String broken")
	}
	for r, want := range map[Rel2]string{
		Rel2Disjoint: "disjoint", Rel2Contains: "contains",
		Rel2Contained: "contained", Rel2Equals: "equals", Rel2Overlap: "overlap",
	} {
		if r.String() != want {
			t.Errorf("Rel2(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if Rel2(99).String() != "rel2(invalid)" {
		t.Error("invalid Rel2 String broken")
	}
	for r, want := range map[Rel3]string{
		Rel3Disjoint: "disjoint", Rel3Meet: "meet", Rel3Overlap: "overlap",
		Rel3Covers: "covers", Rel3Contains: "contains",
		Rel3CoveredBy: "coveredBy", Rel3Inside: "inside", Rel3Equal: "equal",
	} {
		if r.String() != want {
			t.Errorf("Rel3(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
	if Rel3(99).String() != "rel3(invalid)" {
		t.Error("invalid Rel3 String broken")
	}
}

func TestNineIntersectionExteriorAlwaysTrue(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func() bool {
		p, q := randRect(r), randRect(r)
		return NineIntersection(p, q)[Exterior][Exterior]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
