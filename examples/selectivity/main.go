// Selectivity: the query-optimization use the paper's conclusion points
// at. A spatial query planner must decide between an index scan and a full
// scan based on how many objects a predicate touches — and for Level 2
// predicates ("objects WITHIN this window" vs "objects COVERING this
// point's neighborhood") it needs per-relation selectivities, not just
// intersect counts. This example uses a Summary as the planner's
// statistics object and reports estimate-vs-exact across 200 random
// window queries on road-network data.
//
// Run with: go run ./examples/selectivity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialhist"
	"spatialhist/internal/dataset"
	"spatialhist/internal/exact"
	"spatialhist/internal/grid"
)

func main() {
	d := dataset.CARoadLike(300_000, 7)
	g := spatialhist.NewGrid(d.Extent, 360, 180)
	s := spatialhist.NewSEuler(g, d.Rects) // small segments: S-Euler is the right tool
	fmt.Printf("planner statistics: %s over %d road segments, %d buckets (%.1f KB)\n\n",
		s.Algorithm(), s.Count(), s.StorageBuckets(), float64(8*s.StorageBuckets())/1024)

	// Snapped spans once, for the exact side of the comparison.
	spans := exact.Spans(g, d.Rects)

	r := rand.New(rand.NewSource(1))
	type bucket struct {
		name     string
		absErr   float64
		sumExact float64
	}
	within := bucket{name: "WITHIN window (contains)"}
	touches := bucket{name: "INTERSECTS window"}

	const queries = 200
	for k := 0; k < queries; k++ {
		// Random 4-40 cell windows, grid-aligned like real tile predicates.
		w := 4 + r.Intn(37)
		h := 4 + r.Intn(37)
		i1 := r.Intn(360 - w)
		j1 := r.Intn(180 - h)
		span := grid.Span{I1: i1, J1: j1, I2: i1 + w - 1, J2: j1 + h - 1}

		est := s.QuerySpan(span)
		truth := exact.EvaluateQuery(spans, span)

		within.absErr += abs(float64(est.Contains - truth.Contains))
		within.sumExact += float64(truth.Contains)
		estTouch := est.Contains + est.Contained + est.Overlap
		touches.absErr += abs(float64(estTouch - truth.Intersecting()))
		touches.sumExact += float64(truth.Intersecting())
	}

	for _, b := range []bucket{within, touches} {
		rel := 0.0
		if b.sumExact > 0 {
			rel = b.absErr / b.sumExact
		}
		fmt.Printf("%-26s avg relative error over %d queries: %.3f%%\n", b.name, queries, 100*rel)
	}

	// A planner decision: pick the access path for one predicate.
	window := spatialhist.NewRect(120, 60, 160, 90)
	est, err := s.Query(window)
	if err != nil {
		log.Fatal(err)
	}
	sel := float64(est.Contains+est.Overlap+est.Contained) / float64(s.Count())
	fmt.Printf("\npredicate: geometry && %v\n", window)
	fmt.Printf("estimated selectivity: %.2f%% of %d rows\n", 100*sel, s.Count())
	if sel < 0.05 {
		fmt.Println("plan: index scan (low selectivity)")
	} else {
		fmt.Println("plan: sequential scan (predicate touches too much of the table)")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
