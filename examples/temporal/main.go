// Temporal: the paper's machinery in one dimension. Archive records carry
// date *ranges* (a map series covers 1950–1965, a photograph one day), and
// browsing by time raises exactly the Level 2 questions: how many records
// fall entirely within each decade (contains), how many span across it
// (contained), how many straddle its edges (overlap)? This example builds
// 1-d Euler histograms over 100k synthetic record date ranges and browses
// a century at decade and year resolution, comparing the single-histogram
// heuristic against length-partitioned histograms and exact counts.
//
// Run with: go run ./examples/temporal
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"spatialhist/internal/interval"
)

func main() {
	// Domain: years 1900–2000 at one-year resolution.
	d := interval.NewDomain(1900, 2000, 100)

	// Synthetic archive: mostly short records (days to a few years), some
	// multi-decade series, a few century-spanning collections.
	r := rand.New(rand.NewSource(17))
	segs := make([]interval.Seg, 0, 100_000)
	b := interval.NewBuilder(d)
	for len(segs) < 100_000 {
		start := 1900 + r.Float64()*100
		var length float64
		switch p := r.Float64(); {
		case p < 0.70:
			length = r.Float64() * 2 // snapshots and short studies
		case p < 0.95:
			length = 2 + r.Float64()*15 // multi-year series
		default:
			length = 20 + r.Float64()*80 // long-running collections
		}
		end := math.Min(start+length, 2000)
		s, ok := d.Snap(start, end)
		if !ok {
			continue
		}
		b.AddSeg(s)
		segs = append(segs, s)
	}
	single := b.Build()

	lp, err := interval.NewLengthPartitioned(d, []int{1, 3, 11, 21}, segs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d records; single histogram %d buckets, partitioned %d\n\n",
		single.Count(), single.StorageBuckets(), lp.StorageBuckets())

	// Browse by decade.
	fmt.Println("records per decade (exact | single-histogram | length-partitioned):")
	fmt.Printf("%-12s %22s %22s %22s\n", "decade", "within", "spanning-across", "straddling")
	for dec := 0; dec < 10; dec++ {
		q := interval.Seg{I1: dec * 10, I2: dec*10 + 9}
		exact := interval.EvaluateQuery(segs, q)
		est1 := single.Estimate(q)
		estP := lp.Estimate(q)
		fmt.Printf("%d–%d   %6d | %6d | %6d   %5d | %5d | %5d   %6d | %6d | %6d\n",
			1900+dec*10, 1900+dec*10+10,
			exact.Contains, est1.Contains, estP.Contains,
			exact.Contained, est1.Contained, estP.Contained,
			exact.Overlap, est1.Overlap, estP.Overlap)
	}

	// Zoom: years of the 1960s. With a threshold at length 3 > 1+1, the
	// partitioned estimator answers one-year queries exactly too.
	fmt.Println("\nrecords within each year of the 1960s (exact | partitioned):")
	for y := 60; y < 70; y++ {
		q := interval.Seg{I1: y, I2: y}
		exact := interval.EvaluateQuery(segs, q)
		est := lp.Estimate(q)
		fmt.Printf("  19%d: %5d | %5d\n", y, exact.Contains, est.Contains)
	}

	// The storage alternative for exact answers at every length: Theorem
	// 3.1's n(n+1)/2-class structure.
	o := interval.NewOracle(d, segs)
	fmt.Printf("\nexact-at-any-length oracle needs %d cells (vs %d histogram buckets)\n",
		o.StorageCells(), lp.StorageBuckets())
}
