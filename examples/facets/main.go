// Facets: the complete GeoBrowsing interaction of the paper's Figure 1 —
// browsing constrained by region, DATE and SUBJECT TYPE at once. An
// archive of 300k records (maps, photos, gazetteer entries spread over a
// century) is partitioned into per-(subject, decade) Euler histograms;
// each faceted browse then sums constant-time estimates over the selected
// partitions, so changing a facet re-renders the whole map instantly.
//
// Run with: go run ./examples/facets
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"spatialhist/internal/archive"
	"spatialhist/internal/core"
	"spatialhist/internal/geom"
	"spatialhist/internal/grid"
)

func main() {
	g := grid.New(geom.NewRect(0, 0, 360, 180), 360, 180)
	schema := archive.Schema{
		Grid:      g,
		Subjects:  []string{"map", "aerial photo", "gazetteer entry"},
		DateLo:    1900,
		DateHi:    2000,
		DateBands: 10, // decades
	}
	b, err := archive.NewBuilder(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic archive: photography explodes mid-century and clusters
	// around a few survey regions; maps are spread over the whole period.
	r := rand.New(rand.NewSource(29))
	sites := make([][2]float64, 12)
	for i := range sites {
		sites[i] = [2]float64{r.Float64() * 360, r.Float64() * 180}
	}
	added := 0
	for added < 300_000 {
		var rec archive.Record
		switch p := r.Float64(); {
		case p < 0.35: // maps: any date, medium extents
			w, h := 1+r.Float64()*20, 1+r.Float64()*12
			x, y := r.Float64()*360, r.Float64()*180
			rec = archive.Record{
				MBR:     geom.NewRect(x, y, math.Min(x+w, 360), math.Min(y+h, 180)),
				Date:    1900 + r.Float64()*100,
				Subject: 0,
			}
		case p < 0.80: // photos: late-century, clustered, small
			s := sites[r.Intn(len(sites))]
			x := s[0] + r.NormFloat64()*8
			y := s[1] + r.NormFloat64()*6
			rec = archive.Record{
				MBR:     geom.NewRect(x, y, x+0.2, y+0.2),
				Date:    1940 + r.Float64()*60,
				Subject: 1,
			}
		default: // gazetteer points: uniform in space and time
			x, y := r.Float64()*360, r.Float64()*180
			rec = archive.Record{
				MBR:     geom.NewRect(x, y, x, y),
				Date:    1900 + r.Float64()*100,
				Subject: 2,
			}
		}
		if b.Add(rec) {
			added++
		}
	}
	a := b.Build()
	fmt.Printf("archive: %d records in %d buckets across per-(subject, decade) histograms\n\n",
		a.Count(), a.StorageBuckets())

	region := grid.Span{I1: 0, J1: 0, I2: 359, J2: 179}
	show := func(title string, f archive.Filter) {
		n, err := a.MatchCount(f)
		if err != nil {
			log.Fatal(err)
		}
		ests, err := a.Browse(f, region, 72, 18)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d matching records, intersecting per 5°x10° tile:\n", title, n)
		fmt.Print(render(ests, 72, 18))
		fmt.Println()
	}

	show("all records", archive.Filter{})
	show("aerial photos only", archive.Filter{Subjects: []int{1}})
	show("aerial photos, 1940–1960", archive.Filter{Subjects: []int{1}, DateFrom: 1940, DateTo: 1960})
	show("maps, 1900–1920", archive.Filter{Subjects: []int{0}, DateFrom: 1900, DateTo: 1920})
}

func render(ests []core.Estimate, cols, rows int) string {
	shades := []byte(" .:-=+*#%@")
	var maxV int64 = 1
	for _, e := range ests {
		c := e.Clamped()
		if v := c.Contains + c.Overlap + c.Contained; v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	for rr := rows - 1; rr >= 0; rr-- {
		for c := 0; c < cols; c++ {
			e := ests[rr*cols+c].Clamped()
			v := e.Contains + e.Overlap + e.Contained
			k := 0
			if v > 0 {
				k = 1 + int(float64(len(shades)-2)*math.Log1p(float64(v))/math.Log1p(float64(maxV)))
				if k > len(shades)-1 {
					k = len(shades) - 1
				}
			}
			sb.WriteByte(shades[k])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
