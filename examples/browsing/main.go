// Browsing: the GeoBrowsing scenario of §1. A user facing an unknown
// 200k-object archive wants to know where the data is before writing any
// real queries. One Browse call answers a whole grid of tiles — the
// "hundreds of trial queries with a single click" — and the result renders
// as a heat map. Zooming is just browsing a smaller region with the same
// summary.
//
// Run with: go run ./examples/browsing
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"spatialhist"
	"spatialhist/internal/dataset"
)

func main() {
	// An ADL-like archive: points, local maps, and a tail of huge maps.
	d := dataset.ADLLike(200_000, 42)
	g := spatialhist.NewGrid(d.Extent, 360, 180)

	s, err := spatialhist.NewMEuler(g, []float64{1, 25, 400}, d.Rects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summarized %d objects into %d buckets (%s)\n\n",
		s.Count(), s.StorageBuckets(), s.Algorithm())

	// Step 1: browse the whole world at 72x18 tiles.
	world := d.Extent
	ests, err := s.Browse(world, 72, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("objects contained per 5°x10° tile, whole space:")
	fmt.Print(render(ests, 72, 18, spatialhist.RelationContains))

	// Step 2: the user zooms into the hottest tile's neighborhood.
	hot := hottest(ests, 72, 18, world)
	zoom := spatialhist.NewRect(
		clamp(hot.X-30, 0, 300), clamp(hot.Y-20, 0, 140),
		clamp(hot.X-30, 0, 300)+60, clamp(hot.Y-20, 0, 140)+40,
	)
	ests, err = s.Browse(zoom, 60, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nzoom into %v at 1°x2° tiles:\n", zoom)
	fmt.Print(render(ests, 60, 20, spatialhist.RelationContains))

	// Step 3: same region, but asking a different question — how many huge
	// maps cover each tile (the contained relation), which Level 1 systems
	// cannot answer at all.
	fmt.Printf("\nobjects *containing* each tile in %v:\n", zoom)
	fmt.Print(render(ests, 60, 20, spatialhist.RelationContained))
}

// hottest returns the center of the tile with the most contained objects.
func hottest(ests []spatialhist.Estimate, cols, rows int, region spatialhist.Rect) spatialhist.Point {
	best, bestV := 0, int64(-1)
	for i, e := range ests {
		if v := e.Clamped().Contains; v > bestV {
			best, bestV = i, v
		}
	}
	tw := region.Width() / float64(cols)
	th := region.Height() / float64(rows)
	return spatialhist.Point{
		X: region.XMin + (float64(best%cols)+0.5)*tw,
		Y: region.YMin + (float64(best/cols)+0.5)*th,
	}
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }

func render(ests []spatialhist.Estimate, cols, rows int, rel spatialhist.Relation) string {
	shades := []byte(" .:-=+*#%@")
	var maxV int64 = 1
	for _, e := range ests {
		if v := e.Clamped().Get(rel); v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			v := ests[r*cols+c].Clamped().Get(rel)
			k := 0
			if v > 0 {
				k = 1 + int(float64(len(shades)-2)*math.Log1p(float64(v))/math.Log1p(float64(maxV)))
				if k > len(shades)-1 {
					k = len(shades) - 1
				}
			}
			b.WriteByte(shades[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
