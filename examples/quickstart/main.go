// Quickstart: summarize a handful of MBRs with each of the paper's three
// estimators and compare their answers against the exact counts for one
// browsing tile.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spatialhist"
)

func main() {
	// A 36x18 grid over a [0,360]x[0,180] space: 10x10-unit cells.
	g := spatialhist.NewGrid(spatialhist.NewRect(0, 0, 360, 180), 36, 18)

	// A tiny dataset: a country-sized object, two city-sized ones, a point
	// of interest, and something far away.
	rects := []spatialhist.Rect{
		spatialhist.NewRect(100, 40, 260, 140), // large map containing the query below
		spatialhist.NewRect(150, 80, 170, 95),  // mid-size map inside the query
		spatialhist.NewRect(175, 85, 185, 100), // map overlapping the query edge
		spatialhist.NewRect(160, 90, 160, 90),  // point record inside the query
		spatialhist.NewRect(10, 10, 20, 15),    // far away
	}
	query := spatialhist.NewRect(140, 70, 180, 110) // grid-aligned 4x4-cell tile

	// Ground truth straight from the objects.
	exact, err := spatialhist.Exact(g, rects, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s disjoint=%d contains=%d contained=%d overlap=%d\n",
		"exact:", exact.Disjoint, exact.Contains, exact.Contained, exact.Overlap)

	// The three histogram estimators. None of them touches the objects at
	// query time; each answers in constant time from its buckets.
	summaries := []*spatialhist.Summary{
		spatialhist.NewSEuler(g, rects),
		spatialhist.NewEuler(g, rects),
	}
	if m, err := spatialhist.NewMEuler(g, []float64{1, 4, 64}, rects); err == nil {
		summaries = append(summaries, m)
	} else {
		log.Fatal(err)
	}

	for _, s := range summaries {
		est, err := s.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s disjoint=%d contains=%d contained=%d overlap=%d   (%d buckets)\n",
			s.Algorithm()+":", est.Disjoint, est.Contains, est.Contained, est.Overlap,
			s.StorageBuckets())
	}

	fmt.Println("\nNote how S-EulerApprox misattributes the containing object to")
	fmt.Println("'contains' (its N_cd=0 assumption), while EulerApprox and")
	fmt.Println("M-EulerApprox recover the correct split.")
}
