// Multiresolution: the pragmatic M-EulerApprox tuning loop of §6.4. Given
// a size-skewed dataset and the query sizes a deployment must support, the
// library searches for the smallest set of area thresholds that keeps the
// worst-case contains error under a target — and this example shows the
// accuracy/storage trade-off it navigates.
//
// Run with: go run ./examples/multiresolution
package main

import (
	"fmt"
	"log"

	"spatialhist"
	"spatialhist/internal/core"
	"spatialhist/internal/dataset"
	"spatialhist/internal/exact"
	"spatialhist/internal/geom"
	"spatialhist/internal/metrics"
	"spatialhist/internal/query"
)

func main() {
	d := dataset.SzSkew(150_000, 11)
	g := spatialhist.NewGrid(d.Extent, 360, 180)
	tileSizes := []int{20, 10, 5, 4, 2} // the browsing tile sizes to support

	// Manual configurations from coarse to fine, then the tuned one.
	configs := [][]float64{
		{1},
		{1, 100},
		{1, 9, 100},
	}
	tuned, err := spatialhist.Tune(g, d.Rects, tileSizes, spatialhist.TuneOptions{
		MaxQueryCells: 400, // 20x20 tiles
		TargetError:   0.05,
		MaxHistograms: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	configs = append(configs, tuned)

	// Precompute ground truth per tile size.
	spans := exact.Spans(g, d.Rects)
	sets := make([]*query.Set, 0, len(tileSizes))
	truths := make([][]int64, 0, len(tileSizes))
	for _, n := range tileSizes {
		qs, err := query.QN(g, n)
		if err != nil {
			log.Fatal(err)
		}
		sets = append(sets, qs)
		t := exact.EvaluateSet(spans, qs)
		col := make([]int64, len(t))
		for i := range t {
			col[i] = t[i].Contains
		}
		truths = append(truths, col)
	}

	fmt.Printf("%-28s %9s", "area thresholds", "buckets")
	for _, n := range tileSizes {
		fmt.Printf(" %8s", fmt.Sprintf("Q%d err", n))
	}
	fmt.Println()
	for _, areas := range configs {
		m, err := core.NewMEuler(g, areas, d.Rects)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9d", fmt.Sprint(areas), m.StorageBuckets())
		for k, qs := range sets {
			est := make([]int64, len(qs.Tiles))
			for i, q := range qs.Tiles {
				est[i] = m.Estimate(q).Get(geom.Rel2Contains)
			}
			fmt.Printf(" %7.2f%%", 100*metrics.AvgRelativeError(truths[k], est))
		}
		fmt.Println()
	}
	fmt.Printf("\ntuned thresholds: %v (found by the §6.4 procedure)\n", tuned)
	fmt.Println("each extra histogram costs one more (2·360−1)(2·180−1)-bucket table")
	fmt.Println("but removes the error peak at the query size it covers.")
}
