package spatialhist

import (
	"testing"

	"spatialhist/internal/dataset"
)

func TestQuickstartFlow(t *testing.T) {
	g := NewUnitGrid(36, 18)
	rects := []Rect{
		NewRect(2, 2, 4, 4),     // small object
		NewRect(10, 5, 30, 15),  // big object
		NewRect(2.5, 2.5, 3, 3), // tiny object inside the first
	}
	s := NewSEuler(g, rects)
	if s.Count() != 3 || s.Algorithm() != "S-EulerApprox" || s.Grid() != g {
		t.Fatalf("summary accessors broken: %s %d", s.Algorithm(), s.Count())
	}
	if s.StorageBuckets() != 71*35 {
		t.Fatalf("StorageBuckets = %d", s.StorageBuckets())
	}
	est, err := s.Query(NewRect(0, 0, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if est.Contains != 2 || est.Disjoint != 1 || est.Overlap != 0 {
		t.Fatalf("Query = %v", est)
	}
	if _, err := s.Query(NewRect(0.5, 0, 6, 6)); err == nil {
		t.Fatal("non-aligned query must error")
	}
}

func TestEulerAndExactAgreeOnContained(t *testing.T) {
	g := NewUnitGrid(20, 20)
	rects := []Rect{NewRect(2, 2, 18, 18)}
	s := NewEuler(g, rects)
	q := NewRect(8, 8, 12, 12)
	est, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Exact(g, rects, q)
	if err != nil {
		t.Fatal(err)
	}
	if est.Contained != want.Contained || want.Contained != 1 {
		t.Fatalf("Contained: est %d, exact %d, want 1", est.Contained, want.Contained)
	}
}

func TestBrowse(t *testing.T) {
	g := NewUnitGrid(40, 20)
	d := dataset.SpSkew(2000, 3)
	// SpSkew lives in 360x180; rescale the grid to it.
	g = NewGrid(d.Extent, 40, 20)
	s := NewSEuler(g, d.Rects)
	ests, err := s.Browse(d.Extent, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 32 {
		t.Fatalf("Browse returned %d tiles", len(ests))
	}
	var total int64
	for _, e := range ests {
		total += e.Contains + e.Overlap
	}
	if total == 0 {
		t.Fatal("browsing a populated dataset found nothing")
	}
	if _, err := s.Browse(d.Extent, 7, 4); err == nil {
		t.Fatal("non-dividing tiling must error")
	}
	if _, err := s.Browse(NewRect(0.3, 0, 9, 9), 3, 3); err == nil {
		t.Fatal("non-aligned region must error")
	}
}

func TestMEulerAndTune(t *testing.T) {
	d := dataset.SzSkew(4000, 5)
	g := NewGrid(d.Extent, 72, 36)
	if _, err := NewMEuler(g, []float64{2, 4}, d.Rects); err == nil {
		t.Fatal("bad thresholds must error")
	}
	areas, err := Tune(g, d.Rects, []int{12, 6, 4}, TuneOptions{
		MaxQueryCells: 144,
		TargetError:   0.05,
		MaxHistograms: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMEuler(g, areas, d.Rects)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 4000 {
		t.Fatalf("Count = %d", m.Count())
	}
	if _, err := Tune(g, d.Rects, []int{7}, TuneOptions{MaxQueryCells: 144, TargetError: 0.05, MaxHistograms: 3}); err == nil {
		t.Fatal("non-dividing tile size must error")
	}
}

func TestBuilderFromHistogram(t *testing.T) {
	g := NewUnitGrid(10, 10)
	b := NewBuilder(g)
	b.Add(NewRect(1, 1, 9, 9))
	s := FromHistogram(b.Build())
	est, err := s.Query(NewRect(4, 4, 6, 6))
	if err != nil {
		t.Fatal(err)
	}
	if est.Contained != 1 {
		t.Fatalf("Contained = %d, want 1", est.Contained)
	}
}

func TestLevel2Reexport(t *testing.T) {
	q := NewRect(0, 0, 10, 10)
	if Level2(q, NewRect(2, 2, 3, 3)) != RelationContains {
		t.Fatal("Level2 re-export broken")
	}
	if Level2(q, NewRect(5, 5, 5, 5)) != RelationContains {
		t.Fatal("degenerate objects must use browsing semantics")
	}
	if Level2(q, NewRect(20, 20, 30, 30)) != RelationDisjoint {
		t.Fatal("disjoint broken")
	}
}

func TestQueryDetail(t *testing.T) {
	d := dataset.SzSkew(2000, 21)
	g := NewGrid(d.Extent, 72, 36)
	m, err := NewMEuler(g, []float64{1, 9}, d.Rects)
	if err != nil {
		t.Fatal(err)
	}
	est, details, err := m.QueryDetail(NewRect(50, 50, 100, 100))
	if err != nil || len(details) != 2 {
		t.Fatalf("QueryDetail: %d details, %v", len(details), err)
	}
	if est.Total() != 2000 {
		t.Fatalf("estimate total %d", est.Total())
	}
	// Single-histogram summaries return no details.
	s := NewSEuler(g, d.Rects)
	_, details, err = s.QueryDetail(NewRect(50, 50, 100, 100))
	if err != nil || details != nil {
		t.Fatalf("SEuler details = %v, %v", details, err)
	}
	if _, _, err := m.QueryDetail(NewRect(0.3, 0, 5, 5)); err == nil {
		t.Fatal("misaligned query must error")
	}
}

func TestQueryNearest(t *testing.T) {
	g := NewUnitGrid(20, 10)
	rects := []Rect{
		NewRect(2.1, 2.1, 2.9, 2.9), // inside cell (2,2)
		NewRect(10, 5, 12, 7),
	}
	s := NewSEuler(g, rects)

	// An aligned query: coverage 1, span matches exactly.
	est, span, cov, err := s.QueryNearest(NewRect(2, 2, 3, 3))
	if err != nil || cov != 1 || span != (Span{I1: 2, J1: 2, I2: 2, J2: 2}) {
		t.Fatalf("aligned: %v %v %g %v", est, span, cov, err)
	}
	if est.Contains != 1 {
		t.Fatalf("aligned estimate = %v", est)
	}

	// An unaligned query answered at the covering span.
	est, span, cov, err = s.QueryNearest(NewRect(1.5, 1.5, 3.5, 3.5))
	if err != nil || span != (Span{I1: 1, J1: 1, I2: 3, J2: 3}) {
		t.Fatalf("unaligned: %v %g %v", span, cov, err)
	}
	if want := 4.0 / 9.0; cov < want-1e-9 || cov > want+1e-9 {
		t.Fatalf("coverage = %g, want %g", cov, want)
	}
	if est.Contains != 1 {
		t.Fatalf("unaligned estimate = %v", est)
	}

	// Clipped to the space.
	_, span, _, err = s.QueryNearest(NewRect(-5, -5, 1.5, 1.5))
	if err != nil || span != (Span{I1: 0, J1: 0, I2: 1, J2: 1}) {
		t.Fatalf("clipped: %v %v", span, err)
	}

	// Rejections.
	if _, _, _, err := s.QueryNearest(NewRect(50, 50, 60, 60)); err == nil {
		t.Error("outside query must error")
	}
	if _, _, _, err := s.QueryNearest(NewRect(1, 1, 1, 1)); err == nil {
		t.Error("degenerate query must error")
	}
}
