package spatialhist

import (
	"math/rand"
	"sync"
	"testing"

	"spatialhist/internal/dataset"
	"spatialhist/internal/exact"
	"spatialhist/internal/grid"
)

// TestConcurrentQueries hammers one summary from many goroutines; run with
// -race this pins the documented immutability/concurrency contract.
func TestConcurrentQueries(t *testing.T) {
	d := dataset.ADLLike(20_000, 8)
	g := NewGrid(d.Extent, 90, 45)
	s, err := NewMEuler(g, []float64{1, 9, 100}, d.Rects)
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers computed single-threaded.
	queries := make([]Span, 512)
	want := make([]Estimate, len(queries))
	r := rand.New(rand.NewSource(5))
	for i := range queries {
		i1, j1 := r.Intn(90), r.Intn(45)
		queries[i] = Span{I1: i1, J1: j1, I2: i1 + r.Intn(90-i1), J2: j1 + r.Intn(45-j1)}
		want[i] = s.QuerySpan(queries[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for k := 0; k < 2000; k++ {
				i := rr.Intn(len(queries))
				if got := s.QuerySpan(queries[i]); got != want[i] {
					t.Errorf("concurrent query diverged at %v", queries[i])
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestPaperScaleSoak builds the full paper-scale sz_skew dataset and
// validates the structural invariants end to end at 1M objects. Skipped
// under -short.
func TestPaperScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale soak")
	}
	d := dataset.SzSkew(1_000_000, 2002)
	g := NewGrid(d.Extent, 360, 180)
	spans := exact.Spans(g, d.Rects)
	if len(spans) != 1_000_000 {
		t.Fatalf("snapped %d objects", len(spans))
	}
	me, err := NewMEuler(g, []float64{1, 4, 9, 25, 100, 225}, d.Rects)
	if err != nil {
		t.Fatal(err)
	}
	if me.Count() != 1_000_000 {
		t.Fatalf("Count = %d", me.Count())
	}
	// Every estimate sums to |S|; disjoint is exact; the whole-space query
	// reports everything as contained in it.
	r := rand.New(rand.NewSource(9))
	for k := 0; k < 500; k++ {
		i1, j1 := r.Intn(360), r.Intn(180)
		q := grid.Span{I1: i1, J1: j1, I2: i1 + r.Intn(360-i1), J2: j1 + r.Intn(180-j1)}
		est := me.QuerySpan(q)
		if est.Total() != 1_000_000 {
			t.Fatalf("estimate sums to %d at %v", est.Total(), q)
		}
		if est.Disjoint != int64(1_000_000)-int64(exact.EvaluateQuery(spans, q).Intersecting()) {
			t.Fatalf("disjoint not exact at %v", q)
		}
	}
	whole := me.QuerySpan(grid.Span{I1: 0, J1: 0, I2: 359, J2: 179})
	if whole.Contains != 1_000_000 || whole.Disjoint != 0 {
		t.Fatalf("whole-space estimate = %v", whole)
	}
}
