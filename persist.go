package spatialhist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"spatialhist/internal/core"
	"spatialhist/internal/euler"
)

// Summary persistence: a small container around the euler histogram format
// that also records which algorithm to rebuild. A saved summary is a few
// MB and loads in milliseconds, so a browsing service can start without
// the original objects.
//
//	magic  [8]byte "SPSUM002"
//	algo   uint8   (1 = S-EulerApprox, 2 = EulerApprox, 3 = M-EulerApprox)
//	m      uint32  (number of histograms; 1 unless M-EulerApprox)
//	areas  m × float64 (M-EulerApprox only)
//	crc    uint32  crc32 (IEEE) over the algo, m and areas bytes
//	hists  m × euler histogram payloads
//
// The header checksum exists because every header byte steers how the
// megabytes after it are interpreted: a flipped area threshold or
// histogram count would otherwise decode into a structurally valid but
// silently wrong summary. Histogram payloads carry their own structural
// check (Σ buckets == count) inside euler.Read.
var summaryMagic = [8]byte{'S', 'P', 'S', 'U', 'M', '0', '0', '2'}

// summaryMagicV1 is the pre-checksum format, recognized only to name the
// version mismatch precisely.
var summaryMagicV1 = [8]byte{'S', 'P', 'S', 'U', 'M', '0', '0', '1'}

const (
	algoSEuler uint8 = 1
	algoEuler  uint8 = 2
	algoMEuler uint8 = 3
)

// Save serializes the summary.
func (s *Summary) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(summaryMagic[:]); err != nil {
		return err
	}
	var algo uint8
	var areas []float64
	var hists []*euler.Histogram
	switch est := s.est.(type) {
	case *core.SEuler:
		algo, hists = algoSEuler, []*euler.Histogram{est.Histogram()}
	case *core.Euler:
		algo, hists = algoEuler, []*euler.Histogram{est.Histogram()}
	case *core.MEuler:
		algo, areas, hists = algoMEuler, est.Areas(), est.Histograms()
	default:
		return fmt.Errorf("spatialhist: summaries over %T cannot be saved", s.est)
	}
	header := make([]byte, 0, 5+8*len(areas))
	header = append(header, algo)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(hists)))
	for _, a := range areas {
		header = binary.LittleEndian.AppendUint64(header, math.Float64bits(a))
	}
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(header)); err != nil {
		return err
	}
	for _, h := range hists {
		if err := h.Write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserializes a summary written by Save.
func Load(r io.Reader) (*Summary, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("spatialhist: reading magic: %w", err)
	}
	if m == summaryMagicV1 {
		return nil, fmt.Errorf("spatialhist: summary written by the pre-checksum %q format; re-save it with this release to upgrade to %q",
			summaryMagicV1, summaryMagic)
	}
	if m != summaryMagic {
		return nil, fmt.Errorf("spatialhist: bad magic %q", m)
	}
	// The fixed header prefix: algo tag plus histogram count. Raw bytes are
	// retained so the checksum can be verified once the area table's length
	// is known.
	header := make([]byte, 5)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("spatialhist: reading header: %w", err)
	}
	algo := header[0]
	// Validate the tag before trusting anything downstream of it: an
	// unknown byte here means the rest of the stream cannot be interpreted,
	// so failing late (after parsing megabytes of histograms) would bury
	// the actual problem under a misleading decode error.
	switch algo {
	case algoSEuler, algoEuler, algoMEuler:
	default:
		return nil, fmt.Errorf("spatialhist: unknown algorithm tag %d (want %d=S-EulerApprox, %d=EulerApprox or %d=M-EulerApprox)",
			algo, algoSEuler, algoEuler, algoMEuler)
	}
	count := binary.LittleEndian.Uint32(header[1:5])
	const maxHists = 64
	if count == 0 || count > maxHists {
		return nil, fmt.Errorf("spatialhist: unreasonable histogram count %d", count)
	}
	if (algo == algoSEuler || algo == algoEuler) && count != 1 {
		return nil, fmt.Errorf("spatialhist: single-histogram algorithm with %d histograms", count)
	}
	var areas []float64
	if algo == algoMEuler {
		raw := make([]byte, 8*count)
		if n, err := io.ReadFull(br, raw); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("spatialhist: M-EulerApprox area table truncated: header promises %d thresholds, stream ends after %d", count, n/8)
			}
			return nil, fmt.Errorf("spatialhist: reading area table: %w", err)
		}
		header = append(header, raw...)
		areas = make([]float64, count)
		for i := range areas {
			areas[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
			if math.IsNaN(areas[i]) || math.IsInf(areas[i], 0) {
				return nil, fmt.Errorf("spatialhist: invalid area threshold %g", areas[i])
			}
		}
	}
	var storedCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &storedCRC); err != nil {
		return nil, fmt.Errorf("spatialhist: reading header checksum: %w", err)
	}
	if got := crc32.ChecksumIEEE(header); got != storedCRC {
		return nil, fmt.Errorf("spatialhist: header checksum mismatch (stored %08x, computed %08x): the algo/count/area bytes are corrupt", storedCRC, got)
	}
	hists := make([]*euler.Histogram, count)
	for i := range hists {
		h, err := euler.Read(br)
		if err != nil {
			return nil, fmt.Errorf("spatialhist: histogram %d: %w", i, err)
		}
		hists[i] = h
	}
	switch algo {
	case algoSEuler:
		return &Summary{est: core.NewSEuler(hists[0]), g: hists[0].Grid()}, nil
	case algoEuler:
		return &Summary{est: core.NewEuler(hists[0]), g: hists[0].Grid()}, nil
	case algoMEuler:
		me, err := core.MEulerFromHistograms(areas, hists)
		if err != nil {
			return nil, fmt.Errorf("spatialhist: %w", err)
		}
		return &Summary{est: me, g: me.Grid()}, nil
	}
	return nil, fmt.Errorf("spatialhist: unknown algorithm tag %d", algo)
}

// SaveFile writes the summary to a file.
func (s *Summary) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return s.Save(f)
}

// LoadFile reads a summary from a file.
func LoadFile(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
