package spatialhist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"spatialhist/internal/core"
	"spatialhist/internal/euler"
)

// Summary persistence: a small container around the euler histogram format
// that also records which algorithm to rebuild. A saved summary is a few
// MB and loads in milliseconds, so a browsing service can start without
// the original objects.
//
//	magic  [8]byte "SPSUM001"
//	algo   uint8   (1 = S-EulerApprox, 2 = EulerApprox, 3 = M-EulerApprox)
//	m      uint32  (number of histograms; 1 unless M-EulerApprox)
//	areas  m × float64 (M-EulerApprox only)
//	hists  m × euler histogram payloads
var summaryMagic = [8]byte{'S', 'P', 'S', 'U', 'M', '0', '0', '1'}

const (
	algoSEuler uint8 = 1
	algoEuler  uint8 = 2
	algoMEuler uint8 = 3
)

// Save serializes the summary.
func (s *Summary) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(summaryMagic[:]); err != nil {
		return err
	}
	var algo uint8
	var areas []float64
	var hists []*euler.Histogram
	switch est := s.est.(type) {
	case *core.SEuler:
		algo, hists = algoSEuler, []*euler.Histogram{est.Histogram()}
	case *core.Euler:
		algo, hists = algoEuler, []*euler.Histogram{est.Histogram()}
	case *core.MEuler:
		algo, areas, hists = algoMEuler, est.Areas(), est.Histograms()
	default:
		return fmt.Errorf("spatialhist: summaries over %T cannot be saved", s.est)
	}
	if err := binary.Write(bw, binary.LittleEndian, algo); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hists))); err != nil {
		return err
	}
	for _, a := range areas {
		if err := binary.Write(bw, binary.LittleEndian, a); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if err := h.Write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load deserializes a summary written by Save.
func Load(r io.Reader) (*Summary, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("spatialhist: reading magic: %w", err)
	}
	if m != summaryMagic {
		return nil, fmt.Errorf("spatialhist: bad magic %q", m)
	}
	var algo uint8
	if err := binary.Read(br, binary.LittleEndian, &algo); err != nil {
		return nil, fmt.Errorf("spatialhist: reading algorithm: %w", err)
	}
	// Validate the tag before trusting anything downstream of it: an
	// unknown byte here means the rest of the stream cannot be interpreted,
	// so failing late (after parsing megabytes of histograms) would bury
	// the actual problem under a misleading decode error.
	switch algo {
	case algoSEuler, algoEuler, algoMEuler:
	default:
		return nil, fmt.Errorf("spatialhist: unknown algorithm tag %d (want %d=S-EulerApprox, %d=EulerApprox or %d=M-EulerApprox)",
			algo, algoSEuler, algoEuler, algoMEuler)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("spatialhist: reading histogram count: %w", err)
	}
	const maxHists = 64
	if count == 0 || count > maxHists {
		return nil, fmt.Errorf("spatialhist: unreasonable histogram count %d", count)
	}
	if (algo == algoSEuler || algo == algoEuler) && count != 1 {
		return nil, fmt.Errorf("spatialhist: single-histogram algorithm with %d histograms", count)
	}
	var areas []float64
	if algo == algoMEuler {
		areas = make([]float64, count)
		for i := range areas {
			if err := binary.Read(br, binary.LittleEndian, &areas[i]); err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return nil, fmt.Errorf("spatialhist: M-EulerApprox area table truncated: header promises %d thresholds, stream ends after %d", count, i)
				}
				return nil, fmt.Errorf("spatialhist: reading area threshold %d: %w", i, err)
			}
			if math.IsNaN(areas[i]) || math.IsInf(areas[i], 0) {
				return nil, fmt.Errorf("spatialhist: invalid area threshold %g", areas[i])
			}
		}
	}
	hists := make([]*euler.Histogram, count)
	for i := range hists {
		h, err := euler.Read(br)
		if err != nil {
			return nil, fmt.Errorf("spatialhist: histogram %d: %w", i, err)
		}
		hists[i] = h
	}
	switch algo {
	case algoSEuler:
		return &Summary{est: core.NewSEuler(hists[0]), g: hists[0].Grid()}, nil
	case algoEuler:
		return &Summary{est: core.NewEuler(hists[0]), g: hists[0].Grid()}, nil
	case algoMEuler:
		me, err := core.MEulerFromHistograms(areas, hists)
		if err != nil {
			return nil, fmt.Errorf("spatialhist: %w", err)
		}
		return &Summary{est: me, g: me.Grid()}, nil
	}
	return nil, fmt.Errorf("spatialhist: unknown algorithm tag %d", algo)
}

// SaveFile writes the summary to a file.
func (s *Summary) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return s.Save(f)
}

// LoadFile reads a summary from a file.
func LoadFile(path string) (*Summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
